//! The harness self-test: mutate the contract and prove the whole
//! failure pipeline fires.
//!
//! A fuzzer that never fails proves nothing about its own machinery.
//! Here the capacity bound is overridden to an impossible value so a
//! perfectly healthy run *must* violate it, and the pipeline is then
//! held to its guarantees end to end: detection → greedy shrinking →
//! a repro file that parses byte-identically (and is a valid fault
//! spec on its own) → replay at 1/2/8 disk-service threads with
//! identical outcomes.

use cms_conformance::{
    check_case_with, replay_at_thread_counts, shrink_case, ConformanceCase, InvariantId,
    Overrides, Repro,
};
use cms_core::Scheme;
use cms_fault::FaultSchedule;

fn healthy_case() -> ConformanceCase {
    ConformanceCase {
        scheme: Scheme::StreamingRaid,
        d: 8,
        p: 4,
        m: 1,
        buffer_mib: 64,
        clips: 16,
        clip_len: 8,
        arrival_milli: 1_500,
        rounds: 90,
        seed: 11,
        auto_rebuild: false,
        degraded: false,
        threads: 1,
        faults: FaultSchedule::parse("@12 fail 2\n@40 repair 2\n").unwrap(),
    }
}

fn impossible_bound() -> Overrides {
    Overrides { capacity_bound: Some(1), ..Overrides::default() }
}

#[test]
fn mutated_contract_shrinks_to_a_deterministic_parseable_repro() {
    let case = healthy_case();
    let ov = impossible_bound();

    // 1. Detection: the mutation must fire on the original case.
    let outcome = check_case_with(&case, ov).expect("case must run");
    assert!(
        outcome.violates(InvariantId::CapacityBound),
        "an impossible bound must be violated: {:?}",
        outcome.violations
    );

    // 2. Shrinking: the minimum must still fail, and the greedy ladder
    // must have found something strictly simpler to chew off (this case
    // has droppable fault events and excess rounds).
    let shrunk = shrink_case(&case, InvariantId::CapacityBound, ov, 400);
    assert!(shrunk.steps > 0, "nothing shrank from a visibly reducible case");
    let shrunk_outcome = check_case_with(&shrunk.case, ov).expect("shrunk case must run");
    let detail = shrunk_outcome
        .violations
        .iter()
        .find(|v| v.invariant == InvariantId::CapacityBound)
        .map(|v| v.detail.clone())
        .expect("shrunk case must still violate the target");

    // 3. Repro round-trip: text → parse → identical, and the whole file
    // must independently parse as a cms-fault spec.
    let repro = Repro { case: shrunk.case.clone(), invariant: InvariantId::CapacityBound, detail };
    let text = repro.to_text();
    assert_eq!(Repro::parse(&text).expect("repro must parse"), repro, "{text}");
    assert_eq!(
        FaultSchedule::parse(&text).expect("repro must be a valid fault spec"),
        repro.case.faults
    );

    // 4. Determinism: 1/2/8 threads reproduce the same violation with
    // the same observables.
    let runs = replay_at_thread_counts(&repro.case, ov).expect("replay must run");
    assert_eq!(runs.len(), 3);
    let (_, first) = &runs[0];
    for (threads, o) in &runs {
        assert!(
            o.violates(InvariantId::CapacityBound),
            "{threads} thread(s): the shrunk repro stopped failing"
        );
        assert_eq!(
            (o.bound, o.peak_active),
            (first.bound, first.peak_active),
            "{threads} thread(s): outcome drifted across thread counts"
        );
    }
}

#[test]
fn rebuild_window_mutation_also_fires() {
    // The second override axis: an instant-rebuild expectation must fail
    // on any case that actually rebuilds.
    let mut case = healthy_case();
    case.auto_rebuild = true;
    let ov = Overrides { rebuild_window: Some(0), ..Overrides::default() };
    let outcome = check_case_with(&case, ov).expect("case must run");
    assert!(
        outcome.violates(InvariantId::RebuildWindow),
        "a zero-round rebuild window must be violated: {:?}",
        outcome.violations
    );
}
