//! Replays every committed repro in `regressions/` through the full
//! conformance contract.
//!
//! Each `*.repro` file is a shrunk fuzz counterexample whose underlying
//! divergence has since been fixed; replaying them here keeps those
//! fixes pinned. Every file is parsed (the whole file must be a valid
//! `cms-fault` spec), replayed at 1, 2 and 8 disk-service threads, and
//! must produce zero violations with byte-identical outcomes across
//! thread counts. An empty corpus passes — the suite only ever tightens
//! as counterexamples accumulate.

use cms_conformance::{replay_at_thread_counts, Overrides, Repro, MAGIC};
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("regressions")
}

fn corpus() -> Vec<(String, Repro)> {
    let mut out = Vec::new();
    let Ok(entries) = std::fs::read_dir(corpus_dir()) else {
        return out; // no corpus directory: nothing to replay
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().is_none_or(|e| e != "repro") {
            continue;
        }
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("{name}: unreadable: {e}"));
        assert!(
            text.starts_with(MAGIC),
            "{name}: first line must be `{MAGIC}`"
        );
        let repro =
            Repro::parse(&text).unwrap_or_else(|e| panic!("{name}: parse failed: {e}"));
        out.push((name, repro));
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

#[test]
fn corpus_files_carry_their_own_names() {
    for (name, repro) in corpus() {
        assert_eq!(
            name,
            repro.file_name(),
            "corpus file name must match the repro's canonical name"
        );
    }
}

#[test]
fn every_committed_repro_now_conforms_at_all_thread_counts() {
    for (name, repro) in corpus() {
        let runs = replay_at_thread_counts(&repro.case, Overrides::default())
            .unwrap_or_else(|e| panic!("{name}: replay failed: {e}"));
        assert_eq!(runs.len(), 3, "{name}: expected 1/2/8-thread replays");
        for (threads, outcome) in &runs {
            assert!(
                outcome.violations.is_empty(),
                "{name}: regressed at {threads} thread(s): {:?}",
                outcome.violations
            );
            // The family the repro was captured for must actually have
            // been asserted — otherwise the replay silently proves
            // nothing about the original divergence.
            assert!(
                outcome.exercised.contains(&repro.invariant),
                "{name}: family {} not exercised at {threads} thread(s) \
                 (exercised: {:?})",
                repro.invariant,
                outcome.exercised
            );
        }
        // Determinism: thread count must not change the observable
        // outcome, only the wall-clock it took to produce it.
        let (_, first) = &runs[0];
        for (threads, outcome) in &runs[1..] {
            assert_eq!(
                (outcome.bound, outcome.peak_active, &outcome.exercised),
                (first.bound, first.peak_active, &first.exercised),
                "{name}: outcome differs at {threads} thread(s)"
            );
        }
    }
}
