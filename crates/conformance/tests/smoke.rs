//! The CI conformance smoke: a bounded seeded case budget through the
//! full model-vs-engine contract.
//!
//! Budget defaults to 64 cases (the CI floor) and is raised locally via
//! `CMS_CONFORMANCE_CASES`; the base seed moves with
//! `CMS_CONFORMANCE_SEED` (EXPERIMENTS.md F1).

use cms_conformance::{env_budget, env_seed, run_harness, HarnessConfig, InvariantId};

#[test]
fn seeded_budget_conforms_and_covers_every_family() {
    let cfg = HarnessConfig {
        base_seed: env_seed(0xC0F0),
        budget: env_budget(64).max(64),
        ..HarnessConfig::default()
    };
    let report = run_harness(cfg);
    assert!(report.cases_run >= 64, "ran only {} cases", report.cases_run);
    // Geometry is drawn to be mostly feasible; a high skip rate means
    // the generator drifted away from the model's feasible region.
    assert!(
        report.infeasible_skipped <= report.cases_run,
        "{} infeasible skips for {} runs",
        report.infeasible_skipped,
        report.cases_run
    );
    // All six schemes must appear, which covers (at least) the three
    // clustered schemes the campaign exercises.
    assert_eq!(report.schemes.len(), 6, "schemes covered: {:?}", report.schemes);
    // Every invariant family must actually have been asserted.
    for inv in InvariantId::ALL {
        let n = report.exercised.get(inv.token()).copied().unwrap_or(0);
        assert!(n > 0, "family {inv} never exercised: {:?}", report.exercised);
    }
    // And the contract must hold. On failure, print ready-to-commit
    // repro files — copy one into crates/conformance/regressions/.
    if !report.failures.is_empty() {
        let mut msg = String::new();
        for f in &report.failures {
            msg.push_str(&format!(
                "\n--- seed {} shrank to {} ---\n{}",
                f.seed,
                f.repro.file_name(),
                f.repro.to_text()
            ));
        }
        panic!(
            "{} conformance failure(s) in {} cases:{msg}",
            report.failures.len(),
            report.cases_run
        );
    }
}
