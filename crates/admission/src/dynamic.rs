//! Dynamic-reservation admission (Section 5.2).
//!
//! Instead of a fixed per-disk reserve, contingency follows each clip:
//! while a clip of super-clip `SC_l` reads a block from disk `j`,
//! contingency for one block is held on every disk `(j + δ) mod d` for
//! `δ ∈ Δ_l` — the union of column offsets at which row `l`'s sets recur
//! in the PGT. Those are precisely the disks holding the rest of the
//! block's parity group, so if `j` fails, the reads needed to reconstruct
//! are already paid for.
//!
//! Admission condition (§5.2): for every disk `i`,
//!
//! ```text
//! served(i) + max_{j, l} cont_i(j, l) ≤ q
//! ```
//!
//! where `cont_i(j, l)` counts clips of super-clip `l` on disk `j` holding
//! contingency on `i`. The `max` is what makes the scheme *dynamic*: a
//! failure is one disk, so only the worst single `(j, l)` source of
//! reconstruction ever materializes on `i` at once per row — unused
//! contingency overlaps instead of accumulating.

use crate::traits::{disk_at, phase_of, Admission, AdmitRequest};
use cms_core::{CmsError, DiskId, RequestId, Scheme};
use std::collections::BTreeMap;

/// Admission controller for [`Scheme::DynamicReservation`].
#[derive(Debug, Clone)]
pub struct DynamicAdmission {
    d: u32,
    q: u32,
    /// `deltas[l]` = the Δ-offset union for super-clip row `l`
    /// ([`cms_bibd::Pgt::row_deltas`]).
    deltas: Vec<Vec<u32>>,
    t: u64,
    /// `count[l][phase]` = active clips of stream `l` at that phase.
    count: Vec<Vec<u32>>,
    active: BTreeMap<RequestId, (u32, u32)>, // id → (stream, phase)
}

impl DynamicAdmission {
    /// Creates a controller for `d` disks with round budget `q` and the
    /// per-row Δ-offset sets (one entry per PGT row / super-clip).
    ///
    /// # Errors
    ///
    /// Returns [`CmsError::InvalidParams`] for an empty array, empty row
    /// set, zero budget, or offsets outside `1..d`.
    pub fn new(d: u32, q: u32, deltas: Vec<Vec<u32>>) -> Result<Self, CmsError> {
        if d == 0 || q == 0 || deltas.is_empty() {
            return Err(CmsError::invalid_params("need d, q >= 1 and at least one row"));
        }
        for (l, row) in deltas.iter().enumerate() {
            if row.iter().any(|&x| x == 0 || x >= d) {
                return Err(CmsError::invalid_params(format!(
                    "row {l} has a Δ-offset outside 1..{d}"
                )));
            }
        }
        let rows = deltas.len();
        Ok(DynamicAdmission {
            d,
            q,
            deltas,
            t: 0,
            count: vec![vec![0; d as usize]; rows],
            active: BTreeMap::new(),
        })
    }

    /// Number of super-clip rows.
    #[must_use]
    pub fn rows(&self) -> u32 {
        self.deltas.len() as u32
    }

    /// Clips currently served by disk `i` (all streams).
    fn served(&self, disk: u32) -> u32 {
        let phase = (u64::from(disk) + u64::from(self.d) - self.t % u64::from(self.d))
            % u64::from(self.d);
        self.count.iter().map(|per_phase| per_phase[phase as usize]).sum()
    }

    /// The worst contingency that can materialize on disk `i`: the
    /// maximum over possible failed disks `j` of `Σ_l cont_i(j, l)`.
    ///
    /// The paper's §5.2 condition takes `max_{j,l} cont_i(j,l)` — for
    /// λ = 1 designs a failed disk `j` shares a set with `i` in at most
    /// one row, so the single largest `(j, l)` term *is* the failure
    /// load. For the balanced-fallback designs (λ_max > 1) several rows
    /// of the same failed disk can hit `i` at once, so we sum over rows
    /// per candidate failure and maximize over failures — exact for any
    /// λ, and identical to the paper's condition when λ = 1.
    fn max_cont(&self, disk: u32) -> u32 {
        self.max_cont_plus(disk, None)
    }

    /// [`Self::max_cont`] with an optional hypothetical extra clip of
    /// `(stream, phase)` counted in — the admission precondition can then
    /// be evaluated without mutating the count tables.
    fn max_cont_plus(&self, disk: u32, extra: Option<(usize, u32)>) -> u32 {
        let mut worst = 0;
        for j in 0..self.d {
            if j == disk {
                continue;
            }
            let delta = (disk + self.d - j) % self.d;
            let phase = (u64::from(j) + u64::from(self.d) - self.t % u64::from(self.d))
                % u64::from(self.d);
            let mut from_j = 0;
            for (l, offsets) in self.deltas.iter().enumerate() {
                if offsets.binary_search(&delta).is_ok() {
                    from_j += self.count[l][phase as usize]
                        + u32::from(extra == Some((l, phase as u32)));
                }
            }
            worst = worst.max(from_j);
        }
        worst
    }

    /// First disk whose §5.2 condition a hypothetical extra clip of
    /// `stream` at `phase` would violate (`None` = admissible). Shared by
    /// `try_admit` and the allocation-free [`Admission::check`] preview.
    fn violation_with(&self, stream: usize, phase: u32) -> Option<u32> {
        let new_disk = disk_at(phase, self.t, self.d);
        (0..self.d).find(|&i| {
            let served = self.served(i) + u32::from(i == new_disk);
            served + self.max_cont_plus(i, Some((stream, phase))) > self.q
        })
    }
}

impl Admission for DynamicAdmission {
    fn scheme(&self) -> Scheme {
        Scheme::DynamicReservation
    }

    fn q(&self) -> u32 {
        self.q
    }

    fn try_admit(&mut self, req: AdmitRequest) -> Result<(), CmsError> {
        let stream = req.stream as usize;
        if stream >= self.deltas.len() {
            return Err(CmsError::invalid_params(format!(
                "stream {} out of range (rows = {})",
                req.stream,
                self.deltas.len()
            )));
        }
        let phase = phase_of(req.start_disk.raw(), self.t, self.d);
        // Evaluate the global condition with the candidate counted in
        // (no tentative mutation — the same verdict backs `check`). The
        // check is O(d·Σ|Δ|); cheaper than special-casing which disks the
        // new clip touches.
        if let Some(disk) = self.violation_with(stream, phase) {
            return Err(CmsError::rejected(format!(
                "disk {disk}: served + max contingency would exceed q = {}",
                self.q
            )));
        }
        self.count[stream][phase as usize] += 1;
        self.active.insert(req.id, (req.stream, phase));
        Ok(())
    }

    fn check(&self, req: &AdmitRequest) -> bool {
        let stream = req.stream as usize;
        if stream >= self.deltas.len() {
            return false;
        }
        let phase = phase_of(req.start_disk.raw(), self.t, self.d);
        self.violation_with(stream, phase).is_none()
    }

    fn remove(&mut self, id: RequestId) {
        if let Some((stream, phase)) = self.active.remove(&id) {
            self.count[stream as usize][phase as usize] -= 1;
        }
    }

    fn advance_round(&mut self) {
        self.t += 1;
    }

    fn active(&self) -> usize {
        self.active.len()
    }

    fn worst_case_load(&self, disk: DiskId) -> u32 {
        self.served(disk.raw()) + self.max_cont(disk.raw())
    }

    fn nominal_capacity(&self) -> u64 {
        // Contingency follows the clips, so once anything is active every
        // disk withholds at least one block for the worst failure source:
        // d × (q − 1) bounds the admissible set from above.
        u64::from(self.d) * u64::from(self.q.saturating_sub(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cms_bibd::{Design, DesignSource, Pgt};
    use cms_core::RequestId;

    /// Δ-offsets from the paper's Example 1 PGT.
    fn paper_deltas() -> Vec<Vec<u32>> {
        let pgt = Pgt::new(&Design::new(
            7,
            3,
            vec![
                vec![0, 1, 3],
                vec![1, 2, 4],
                vec![2, 3, 5],
                vec![3, 4, 6],
                vec![4, 5, 0],
                vec![5, 6, 1],
                vec![6, 0, 2],
            ],
            DesignSource::ProjectivePlane,
        ));
        (0..pgt.rows()).map(|row| pgt.row_deltas(row)).collect()
    }

    fn req(id: u64, stream: u32, disk: u32) -> AdmitRequest {
        AdmitRequest {
            id: RequestId(id),
            stream,
            start_index: 0,
            start_disk: DiskId(disk),
            row: stream,
            len: 50,
        }
    }

    #[test]
    fn admits_within_budget() {
        let mut c = DynamicAdmission::new(7, 5, paper_deltas()).unwrap();
        for i in 0..7u64 {
            assert!(c.try_admit(req(i, 0, (i % 7) as u32)).is_ok(), "clip {i}");
        }
        assert_eq!(c.active(), 7);
        for disk in 0..7 {
            assert!(c.worst_case_load(DiskId(disk)) <= 5);
        }
    }

    #[test]
    fn rejects_when_contingency_would_overflow() {
        // q = 2: one clip per disk is fine; stacking clips on one disk
        // pushes served + cont over budget quickly.
        let mut c = DynamicAdmission::new(7, 2, paper_deltas()).unwrap();
        assert!(c.try_admit(req(1, 0, 0)).is_ok());
        assert!(c.try_admit(req(2, 0, 0)).is_ok());
        // Third clip on the same (stream, disk): served(0) = 3 > q alone.
        assert!(c.try_admit(req(3, 0, 0)).is_err());
    }

    #[test]
    fn contingency_counts_against_other_disks() {
        // With q = 3, pile clips of stream 0 onto disk 0; their
        // contingency lands on the Δ₀ offsets of disk 0, limiting
        // admissions there even though those disks serve nothing yet.
        let deltas = paper_deltas();
        let delta0 = deltas[0][0];
        let mut c = DynamicAdmission::new(7, 3, deltas).unwrap();
        for i in 0..3u64 {
            assert!(c.try_admit(req(i, 0, 0)).is_ok());
        }
        // Disk (0 + δ) now holds cont = 3 = q; serving any clip there
        // would break the failure guarantee.
        let blocked = c.try_admit(req(10, 0, delta0));
        assert!(blocked.is_err(), "disk at Δ-offset must be saturated");
    }

    #[test]
    fn unlike_static_f_unloaded_system_admits_anywhere() {
        // The motivating scenario of §5: with static f, a (disk, row)
        // class can be full while the disk idles. Dynamic reservation has
        // no such class — a lightly loaded system admits everywhere.
        let mut c = DynamicAdmission::new(7, 6, paper_deltas()).unwrap();
        for stream in 0..3u32 {
            for disk in 0..7u32 {
                let id = u64::from(stream) * 100 + u64::from(disk);
                assert!(
                    c.try_admit(req(id, stream, disk)).is_ok(),
                    "stream {stream} disk {disk}"
                );
            }
        }
        assert_eq!(c.active(), 21);
    }

    #[test]
    fn removal_and_rotation() {
        let mut c = DynamicAdmission::new(7, 2, paper_deltas()).unwrap();
        c.try_admit(req(1, 0, 0)).unwrap();
        c.try_admit(req(2, 0, 0)).unwrap();
        assert!(c.try_admit(req(3, 0, 0)).is_err());
        c.advance_round();
        // The pair rotated to disk 1; disk 1 is now saturated, disk 0 has
        // room for exactly... clips whose contingency doesn't collide.
        assert!(c.try_admit(req(3, 0, 1)).is_err());
        c.remove(RequestId(1));
        assert!(c.try_admit(req(3, 0, 1)).is_ok());
    }

    #[test]
    fn constructor_validates() {
        assert!(DynamicAdmission::new(0, 2, paper_deltas()).is_err());
        assert!(DynamicAdmission::new(7, 0, paper_deltas()).is_err());
        assert!(DynamicAdmission::new(7, 2, vec![]).is_err());
        assert!(DynamicAdmission::new(7, 2, vec![vec![0]]).is_err()); // δ = 0
        assert!(DynamicAdmission::new(7, 2, vec![vec![7]]).is_err()); // δ = d
    }

    #[test]
    fn unknown_stream_is_invalid() {
        let mut c = DynamicAdmission::new(7, 2, paper_deltas()).unwrap();
        assert!(matches!(
            c.try_admit(req(1, 9, 0)),
            Err(CmsError::InvalidParams { .. })
        ));
    }
}
