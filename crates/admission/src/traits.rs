//! The [`Admission`] trait shared by all six controllers.

use cms_core::{CmsError, DiskId, RequestId, Scheme};

/// Everything a controller needs to know about a playback request at
/// admission time. Fields irrelevant to a scheme are simply ignored by
/// its controller (e.g. `row` outside the declustered family).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmitRequest {
    /// The playback request id (unique per client request).
    pub id: RequestId,
    /// The stream (super-clip) holding the clip; 0 outside the dynamic
    /// scheme.
    pub stream: u32,
    /// Stream index of the clip's first block.
    pub start_index: u64,
    /// Disk holding the clip's first block — the paper's `disk(C)`.
    pub start_disk: DiskId,
    /// PGT row of the clip's first block — the paper's `row(C)` (the
    /// declustered family; 0 elsewhere).
    pub row: u32,
    /// Clip length in blocks.
    pub len: u64,
}

/// A scheme-specific admission controller.
///
/// Lifecycle: the simulator calls [`Admission::try_admit`] when a request
/// reaches the head of the pending list, [`Admission::advance_round`] once
/// per round, and [`Admission::remove`] when playback completes. The
/// controller's internal clock must match the simulator's round counter.
pub trait Admission {
    /// The scheme this controller implements.
    fn scheme(&self) -> Scheme;

    /// The per-disk (or per-cluster, for streaming RAID) round budget `q`
    /// this controller was configured with.
    fn q(&self) -> u32;

    /// Attempts to admit a request at the current round.
    ///
    /// # Errors
    ///
    /// Returns [`CmsError::AdmissionRejected`] describing the exhausted
    /// resource. Rejection is never permanent — the request stays in the
    /// pending list and is retried as clips complete.
    fn try_admit(&mut self, req: AdmitRequest) -> Result<(), CmsError>;

    /// Allocation-free preview of [`Admission::try_admit`]: `true` iff an
    /// immediately following `try_admit` with the same request at the same
    /// round would succeed. The simulator retries the pending queue every
    /// round, so rejections dominate admissions under load; this lets the
    /// hot retry path skip building the rejection message entirely. The
    /// default conservatively accepts (the `try_admit` verdict still
    /// rules); every controller in this crate overrides it exactly.
    fn check(&self, req: &AdmitRequest) -> bool {
        let _ = req;
        true
    }

    /// Removes a completed (or cancelled) request. Unknown ids are
    /// ignored.
    fn remove(&mut self, id: RequestId);

    /// Advances the controller's round clock by one.
    fn advance_round(&mut self);

    /// Number of requests currently admitted.
    fn active(&self) -> usize;

    /// The worst-case number of blocks `disk` may have to retrieve in the
    /// *current* round, maximized over all possible single-disk failures.
    /// The simulator asserts this never exceeds [`Admission::q`].
    fn worst_case_load(&self, disk: DiskId) -> u32;

    /// Fault-free array-wide stream capacity: the number of concurrently
    /// active clips this controller will admit with every disk healthy
    /// (an upper bound where the exact count depends on request mix).
    /// Degraded-mode admission scales this by the surviving-disk
    /// fraction to cap the active set while the array is down a disk.
    fn nominal_capacity(&self) -> u64;
}

/// Shared phase arithmetic: a clip admitted at round `t_adm` starting on
/// disk `s` of a `d`-disk ring occupies *phase* `(s − t_adm) mod d`; at
/// round `t` it reads from disk `(phase + t) mod d`. Clips with equal
/// phase share a disk in every round — the invariant all the controllers'
/// admission-time checks rest on.
#[must_use]
pub fn phase_of(start_disk: u32, t_adm: u64, d: u32) -> u32 {
    let t = (t_adm % u64::from(d)) as u32;
    (start_disk + d - t) % d
}

/// Disk occupied at round `t` by a clip of `phase` on a `d`-ring.
#[must_use]
pub fn disk_at(phase: u32, t: u64, d: u32) -> u32 {
    ((u64::from(phase) + t) % u64::from(d)) as u32
}

/// Number of ring wraps a clip starting on disk `s` at `t_adm` has
/// completed by round `t` (each wrap advances its PGT row by one).
#[must_use]
pub fn wraps_since(start_disk: u32, t_adm: u64, t: u64, d: u32) -> u64 {
    debug_assert!(t >= t_adm);
    (u64::from(start_disk) + (t - t_adm)) / u64::from(d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_is_invariant_under_rotation() {
        let d = 7;
        // A clip starting on disk 3 at round 10 must be on disk 4 at
        // round 11, disk 5 at 12, ...
        let phase = phase_of(3, 10, d);
        assert_eq!(disk_at(phase, 10, d), 3);
        assert_eq!(disk_at(phase, 11, d), 4);
        assert_eq!(disk_at(phase, 17, d), 3); // full cycle
    }

    #[test]
    fn same_phase_means_same_disk_forever() {
        let d = 5;
        let p1 = phase_of(2, 100, d);
        let p2 = phase_of(4, 102, d); // starts 2 rounds later, 2 disks on
        assert_eq!(p1, p2);
        for t in 102..120 {
            assert_eq!(disk_at(p1, t, d), disk_at(p2, t, d));
        }
    }

    #[test]
    fn wraps_advance_once_per_ring_cycle() {
        let d = 7;
        assert_eq!(wraps_since(3, 10, 10, d), 0);
        assert_eq!(wraps_since(3, 10, 13, d), 0); // on disk 6
        assert_eq!(wraps_since(3, 10, 14, d), 1); // wrapped to disk 0
        assert_eq!(wraps_since(3, 10, 21, d), 2);
    }

    #[test]
    fn phase_handles_large_rounds() {
        let d = 32;
        let phase = phase_of(31, u64::MAX - 5, d);
        assert!(phase < d);
    }
}
