//! Admission for pre-fetching with uniform flat parity placement (§6.2).
//!
//! All disks hold data *and* parity, so failure-mode parity reads land on
//! data disks and contingency bandwidth `f` must be reserved on each. The
//! §6.2 conditions:
//!
//! * **(a)** the number of clips fetching from a disk in any round never
//!   exceeds `q − f`;
//! * **(b)** the number of clips on a disk whose current group's parity
//!   block lives on one common disk never exceeds `f` (blocks
//!   `i` and `i + j·(d−(p−1))` of a disk share a parity disk, so these
//!   collisions persist).
//!
//! A clip fetches its whole group — `p−1` blocks on `p−1` consecutive
//! disks — every `p−1` rounds (staggered-group optimization), so loads
//! are windows of width `p−1` sliding rigidly around the ring: admission
//! evaluates both conditions for the candidate's fetch cadence over all
//! disks, using the closed-form Figure 3 parity-disk formula.
//!
//! For configurations where `p−1 ∤ d` (including the paper's own d = 32
//! sweep) group windows wrap the ring and parity classes drift by ±1 row
//! over very long horizons; the simulator's per-round deadline accounting
//! absorbs this (failure reads may be scheduled anywhere inside the
//! buffered `p−1`-round window), so condition (b) at admission time
//! remains the binding check.

use crate::traits::{Admission, AdmitRequest};
use cms_core::{CmsError, DiskId, RequestId, Scheme};
use std::collections::BTreeMap;

/// One admitted clip's geometry.
#[derive(Debug, Clone, Copy)]
struct Active {
    /// Fetch cadence: `t_adm mod (p−1)`.
    cadence: u32,
    /// Stream index of the clip's first block.
    s0: u64,
    /// Admission round.
    t_adm: u64,
}

/// Admission controller for [`Scheme::PrefetchFlat`].
#[derive(Debug, Clone)]
pub struct FlatAdmission {
    d: u32,
    p: u32,
    q: u32,
    f: u32,
    t: u64,
    active: BTreeMap<RequestId, Active>,
}

impl FlatAdmission {
    /// Creates a controller for `d` disks, parity group size `p`, round
    /// budget `q` and contingency `f`.
    ///
    /// # Errors
    ///
    /// [`CmsError::InvalidParams`] unless `2 ≤ p ≤ d`, `p − 1 < d`,
    /// `1 ≤ f < q`.
    pub fn new(d: u32, p: u32, q: u32, f: u32) -> Result<Self, CmsError> {
        if p < 2 || p > d {
            return Err(CmsError::invalid_params("need 2 <= p <= d and p−1 < d"));
        }
        if f == 0 || f >= q {
            return Err(CmsError::invalid_params("need 1 <= f < q"));
        }
        Ok(FlatAdmission { d, p, q, f, t: 0, active: BTreeMap::new() })
    }

    /// Per-disk clip capacity after the reserve (`q − f`).
    #[must_use]
    pub fn per_disk_capacity(&self) -> u32 {
        self.q - self.f
    }

    /// The contingency reservation `f`.
    #[must_use]
    pub fn contingency(&self) -> u32 {
        self.f
    }

    /// The group a clip fetches in its cycle at/after round `t`:
    /// start stream-index of that group.
    fn current_group_start(&self, a: &Active, t: u64) -> u64 {
        let span = u64::from(self.p - 1);
        let cycles = (t - a.t_adm) / span;
        a.s0 + cycles * span
    }

    /// Disks covered by a group starting at stream index `start`
    /// (`p−1` consecutive disks), plus the parity disk per Figure 3.
    fn group_geometry(&self, start: u64) -> (Vec<u32>, u32) {
        let d = u64::from(self.d);
        let span = u64::from(self.p - 1);
        let covered: Vec<u32> = (0..span).map(|k| ((start + k) % d) as u32).collect();
        let last = start + span - 1;
        let last_disk = (last % d) as u32;
        let j = last / d;
        let m = u64::from(self.d - (self.p - 1));
        let parity = ((u64::from(last_disk) + 1 + (j % m)) % d) as u32;
        (covered, parity)
    }

    /// The geometry a request admitted *now* would occupy.
    fn candidate(&self, req: &AdmitRequest) -> Active {
        Active {
            cadence: (self.t % u64::from(self.p - 1)) as u32,
            s0: req.start_index,
            t_adm: self.t,
        }
    }

    /// Evaluates conditions (a) and (b) for the *candidate's* increments
    /// only: per-disk fetch counts on the disks it covers, and the
    /// (data-disk, parity-disk) pairs it adds. (Checking unrelated
    /// pairs here would let slow parity-class drift of long-running
    /// clips block every admission — the candidate can only be charged
    /// for load it adds.) Shared verdict behind both `try_admit` and
    /// `check`.
    ///
    /// # Errors
    ///
    /// [`CmsError::AdmissionRejected`] naming the binding condition.
    fn decide(&self, candidate: &Active) -> Result<(), CmsError> {
        let (cand_covered, cand_parity) = {
            let start = self.current_group_start(candidate, self.t);
            self.group_geometry(start)
        };
        let d = self.d as usize;
        let mut per_disk = vec![0u32; d];
        let mut pair_count = vec![0u32; cand_covered.len()];
        for a in self.active.values() {
            if a.cadence != candidate.cadence {
                continue;
            }
            let start = self.current_group_start(a, self.t.max(a.t_adm));
            let (covered, parity) = self.group_geometry(start);
            for &x in &covered {
                per_disk[x as usize] += 1;
                if parity == cand_parity {
                    if let Some(pos) = cand_covered.iter().position(|&c| c == x) {
                        pair_count[pos] += 1;
                    }
                }
            }
        }
        for &x in &cand_covered {
            if per_disk[x as usize] + 1 > self.per_disk_capacity() {
                return Err(CmsError::rejected(format!(
                    "disk {x} would serve {} clips, capacity q − f = {}",
                    per_disk[x as usize] + 1,
                    self.per_disk_capacity()
                )));
            }
        }
        if let Some(pos) = pair_count.iter().position(|&n| n + 1 > self.f) {
            return Err(CmsError::rejected(format!(
                "{} clips on disk {} would share parity disk {cand_parity}, f = {}",
                pair_count[pos] + 1,
                cand_covered[pos],
                self.f
            )));
        }
        Ok(())
    }
}

impl Admission for FlatAdmission {
    fn scheme(&self) -> Scheme {
        Scheme::PrefetchFlat
    }

    fn q(&self) -> u32 {
        self.q
    }

    fn try_admit(&mut self, req: AdmitRequest) -> Result<(), CmsError> {
        let candidate = self.candidate(&req);
        self.decide(&candidate)?;
        self.active.insert(req.id, candidate);
        Ok(())
    }

    fn check(&self, req: &AdmitRequest) -> bool {
        self.decide(&self.candidate(req)).is_ok()
    }

    fn remove(&mut self, id: RequestId) {
        self.active.remove(&id);
    }

    fn advance_round(&mut self) {
        self.t += 1;
    }

    fn active(&self) -> usize {
        self.active.len()
    }

    fn worst_case_load(&self, disk: DiskId) -> u32 {
        // Normal fetch load at this round's cadence plus the worst
        // single-failure parity load: max over failed disks x of the
        // number of cadence-mates covering x with parity here.
        let cadence = (self.t % u64::from(self.p - 1)) as u32;
        let mut normal = 0u32;
        let mut parity_from: BTreeMap<u32, u32> = BTreeMap::new();
        for a in self.active.values() {
            if a.cadence != cadence {
                continue;
            }
            let start = self.current_group_start(a, self.t);
            let (covered, parity) = self.group_geometry(start);
            if covered.contains(&disk.raw()) {
                normal += 1;
            }
            if parity == disk.raw() {
                for &x in &covered {
                    *parity_from.entry(x).or_insert(0) += 1;
                }
            }
        }
        normal + parity_from.values().copied().max().unwrap_or(0)
    }

    fn nominal_capacity(&self) -> u64 {
        // Condition (a): q − f clips per disk at each of the p−1 fetch
        // cadences, every clip occupying p−1 disks per fetch — the
        // per-disk cap times d over one whole cadence cycle.
        u64::from(self.d) * u64::from(self.per_disk_capacity())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cms_core::RequestId;

    fn req(id: u64, index: u64) -> AdmitRequest {
        AdmitRequest {
            id: RequestId(id),
            stream: 0,
            start_index: index,
            start_disk: DiskId((index % 9) as u32),
            row: 0,
            len: 50,
        }
    }

    /// Figure 3 geometry: d = 9, p = 4.
    fn controller(q: u32, f: u32) -> FlatAdmission {
        FlatAdmission::new(9, 4, q, f).unwrap()
    }

    #[test]
    fn geometry_matches_figure3() {
        let c = controller(5, 1);
        // Group of D0..D2: disks 0..2, parity on disk 3.
        let (covered, parity) = c.group_geometry(0);
        assert_eq!(covered, vec![0, 1, 2]);
        assert_eq!(parity, 3);
        // Group of D9..D11 (row 1 of cluster 0): parity disk 4.
        let (covered, parity) = c.group_geometry(9);
        assert_eq!(covered, vec![0, 1, 2]);
        assert_eq!(parity, 4);
        // Group of D33..D35: parity disk 3 (the paper's P11).
        let (_, parity) = c.group_geometry(33);
        assert_eq!(parity, 3);
    }

    #[test]
    fn condition_a_caps_per_disk_fetches() {
        let mut c = controller(3, 1); // capacity q − f = 2 per disk
        // Same disks (0..2), different rows → different parity disks, so
        // only condition (a) is in play.
        assert!(c.try_admit(req(1, 0)).is_ok());
        assert!(c.try_admit(req(2, 9)).is_ok());
        // A third clip covering disks 0..2 in the same cadence: rejected.
        assert!(c.try_admit(req(3, 18)).is_err());
        // Disjoint disks (3..5): fine.
        assert!(c.try_admit(req(4, 3)).is_ok());
        // Overlapping window (starts at disk 2): covers disk 2 which has
        // load 2 already.
        assert!(c.try_admit(req(5, 2)).is_err());
    }

    #[test]
    fn condition_b_caps_shared_parity() {
        // q large so only (b) binds; f = 1.
        let mut c = controller(10, 1);
        // Two clips on the same disks with the same parity disk (same
        // group geometry): second must be rejected by (b).
        assert!(c.try_admit(req(1, 0)).is_ok());
        let err = c.try_admit(req(2, 0)).unwrap_err();
        assert!(err.to_string().contains("parity"), "{err}");
        // Same disks but different row → different parity disk: allowed.
        assert!(c.try_admit(req(3, 9)).is_ok());
    }

    #[test]
    fn different_cadences_do_not_collide() {
        let mut c = controller(3, 1);
        c.try_admit(req(1, 0)).unwrap();
        c.try_admit(req(2, 9)).unwrap();
        assert!(c.try_admit(req(3, 18)).is_err());
        // Next round is a different fetch cadence: same disks are free.
        c.advance_round();
        assert!(c.try_admit(req(3, 0)).is_ok());
        assert!(c.try_admit(req(4, 9)).is_ok());
        assert!(c.try_admit(req(5, 18)).is_err());
    }

    #[test]
    fn windows_advance_with_fetch_cycles() {
        let mut c = controller(4, 2); // capacity q − f = 2
        c.try_admit(req(1, 0)).unwrap(); // covers 0..2 this cycle
        // After p−1 = 3 rounds, the clip's group is D3..D5 → disks 3..5
        // (cadence 3 mod 3 = 0, same as admission).
        for _ in 0..3 {
            c.advance_round();
        }
        c.try_admit(req(2, 3)).unwrap(); // also covers 3..5 now
        assert!(
            c.try_admit(req(3, 3)).is_err(),
            "disks 3..5 must now be at capacity"
        );
        // Old window 0..2 is free again.
        assert!(c.try_admit(req(4, 0)).is_ok());
    }

    #[test]
    fn removal_frees_both_conditions() {
        let mut c = controller(3, 1);
        c.try_admit(req(1, 0)).unwrap();
        assert!(c.try_admit(req(2, 0)).is_err()); // (b)
        c.remove(RequestId(1));
        assert!(c.try_admit(req(2, 0)).is_ok());
    }

    #[test]
    fn worst_case_load_within_q() {
        let mut c = controller(4, 2);
        for (id, s0) in [(1u64, 0u64), (2, 9), (3, 3), (4, 12)] {
            c.try_admit(req(id, s0)).unwrap();
        }
        for disk in 0..9 {
            assert!(
                c.worst_case_load(DiskId(disk)) <= c.q(),
                "disk {disk}: {} > q",
                c.worst_case_load(DiskId(disk))
            );
        }
    }

    #[test]
    fn constructor_validates() {
        assert!(FlatAdmission::new(9, 1, 5, 1).is_err());
        assert!(FlatAdmission::new(9, 10, 5, 1).is_err());
        assert!(FlatAdmission::new(3, 4, 5, 1).is_err());
        assert!(FlatAdmission::new(9, 4, 5, 0).is_err());
        assert!(FlatAdmission::new(9, 4, 5, 5).is_err());
    }

    #[test]
    fn wraparound_configuration_works() {
        // d = 32, p = 4: the paper's own sweep point where p−1 ∤ d.
        let mut c = FlatAdmission::new(32, 4, 6, 1).unwrap();
        for i in 0..20u64 {
            // Spread starts widely; all should fit under q − f = 5.
            assert!(c.try_admit(req(i, i * 3)).is_ok(), "clip {i}");
        }
        for disk in 0..32 {
            assert!(c.worst_case_load(DiskId(disk)) <= 6);
        }
    }
}
