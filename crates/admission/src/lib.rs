//! # cms-admission — admission control for all six schemes
//!
//! Admission control is the paper's central mechanism: a clip may start
//! playback only if, *for every possible single-disk failure*, every disk
//! can still retrieve all of its blocks within every round. Each scheme
//! gets its own controller because each scheme's failure-mode load lands
//! differently:
//!
//! * [`DeclusteredAdmission`] (§4.2) — static contingency `f` per disk;
//!   conditions (a) ≤ `q − f·λ_max` clips per disk and (b) ≤ `f` clips per
//!   (disk, PGT row).
//! * [`DynamicAdmission`] (§5.2) — per-clip contingency that follows the
//!   clip across the disks of its parity groups (the Δ-offset sets);
//!   condition `served(i) + max cont_i(j, l) ≤ q` for every disk `i`.
//! * [`PrefetchParityDiskAdmission`] (§6.1) — plain ≤ `q` per
//!   (cluster, fetch-cadence) slot; parity disks absorb failure reads.
//! * [`FlatAdmission`] (§6.2) — ≤ `q − f` per disk per fetch round plus
//!   ≤ `f` clips per (data-disk, parity-disk) pair.
//! * [`StreamingRaidAdmission`] (§7.3) — ≤ `q` clips per cluster, fetched
//!   in lock-step long rounds.
//! * [`NonClusteredAdmission`] (§7.4) — ≤ `q` per data-disk phase; no
//!   contingency at all, which is exactly why it can hiccup on failure.
//!
//! All controllers share the *rotation* insight of Section 3: service
//! lists shift to the next disk every round, so the load pattern moves
//! rigidly and admission-time checks remain valid for the clip's entire
//! lifetime (Property 2 of §4.2). Controllers are pure bookkeeping — the
//! simulator owns actual block scheduling — and every controller exposes
//! [`Admission::worst_case_load`] so the simulator can assert the
//! guarantee each round.
//!
//! [`PendingList`] provides the FIFO, head-of-line admission queue that
//! makes every controller starvation-free.

#![forbid(unsafe_code)]

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod declustered;
pub mod dynamic;
pub mod flat;
pub mod pending;
pub mod prefetch;
pub mod traits;

pub use declustered::DeclusteredAdmission;
pub use dynamic::DynamicAdmission;
pub use flat::FlatAdmission;
pub use pending::PendingList;
pub use prefetch::{NonClusteredAdmission, PrefetchParityDiskAdmission, StreamingRaidAdmission};
pub use traits::{Admission, AdmitRequest};
