//! The FIFO pending list (Section 3).
//!
//! Client requests queue here until admission control lets them in. Only
//! the head of the queue is ever offered for admission — a rejected head
//! blocks everyone behind it, which is what makes the policy
//! starvation-free: no late-arriving request that happens to fit a
//! less-contended disk can indefinitely overtake an earlier one (the
//! head's wait is bounded by the completion of currently playing clips).
//!
//! The list also records arrival rounds so the simulator can report
//! response-time statistics (the §5 motivation for dynamic reservation).

use cms_core::{RequestId, Round};
use std::collections::VecDeque;

/// A queued playback request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingRequest<T> {
    /// The request id.
    pub id: RequestId,
    /// Round the request arrived.
    pub arrived: Round,
    /// Scheme-independent payload (e.g. which clip to play).
    pub payload: T,
}

/// FIFO queue of playback requests awaiting admission.
#[derive(Debug, Clone, Default)]
pub struct PendingList<T> {
    queue: VecDeque<PendingRequest<T>>,
}

impl<T> PendingList<T> {
    /// An empty list.
    #[must_use]
    pub fn new() -> Self {
        PendingList { queue: VecDeque::new() }
    }

    /// Enqueues a request.
    pub fn push(&mut self, id: RequestId, arrived: Round, payload: T) {
        self.queue.push_back(PendingRequest { id, arrived, payload });
    }

    /// The head of the queue — the only request eligible for admission.
    #[must_use]
    pub fn head(&self) -> Option<&PendingRequest<T>> {
        self.queue.front()
    }

    /// Removes and returns the head (after a successful admission).
    pub fn pop(&mut self) -> Option<PendingRequest<T>> {
        self.queue.pop_front()
    }

    /// Number of waiting requests.
    #[must_use]
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Is the queue empty?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Waiting time (in rounds) of the head at round `now`, if any.
    #[must_use]
    pub fn head_wait(&self, now: Round) -> Option<u64> {
        self.head().map(|h| now.raw().saturating_sub(h.arrived.raw()))
    }

    /// The request at queue position `idx` (0 = head).
    #[must_use]
    pub fn get(&self, idx: usize) -> Option<&PendingRequest<T>> {
        self.queue.get(idx)
    }

    /// Removes and returns the request at position `idx`, preserving the
    /// order of the rest. Used by *bounded-bypass* admission (cf. ORS96's
    /// starvation-free, bandwidth-effective controller): the server may
    /// admit a later request whose resources happen to be free, as long
    /// as the head has not waited beyond the aging limit — so utilization
    /// stays high and the head's wait stays bounded.
    pub fn remove_at(&mut self, idx: usize) -> Option<PendingRequest<T>> {
        self.queue.remove(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_is_preserved() {
        let mut list = PendingList::new();
        list.push(RequestId(1), Round(0), "a");
        list.push(RequestId(2), Round(1), "b");
        list.push(RequestId(3), Round(1), "c");
        assert_eq!(list.len(), 3);
        assert_eq!(list.head().unwrap().id, RequestId(1));
        assert_eq!(list.pop().unwrap().payload, "a");
        assert_eq!(list.pop().unwrap().payload, "b");
        assert_eq!(list.pop().unwrap().payload, "c");
        assert!(list.pop().is_none());
        assert!(list.is_empty());
    }

    #[test]
    fn head_wait_counts_rounds() {
        let mut list = PendingList::new();
        assert_eq!(list.head_wait(Round(5)), None);
        list.push(RequestId(1), Round(3), ());
        assert_eq!(list.head_wait(Round(3)), Some(0));
        assert_eq!(list.head_wait(Round(10)), Some(7));
    }

    #[test]
    fn indexed_access_and_removal_preserve_order() {
        let mut list = PendingList::new();
        list.push(RequestId(1), Round(0), ());
        list.push(RequestId(2), Round(0), ());
        list.push(RequestId(3), Round(0), ());
        assert_eq!(list.get(1).unwrap().id, RequestId(2));
        assert!(list.get(9).is_none());
        let removed = list.remove_at(1).unwrap();
        assert_eq!(removed.id, RequestId(2));
        assert_eq!(list.pop().unwrap().id, RequestId(1));
        assert_eq!(list.pop().unwrap().id, RequestId(3));
    }
}
