//! Static-contingency admission for the declustered parity scheme
//! (Section 4.2).
//!
//! Contingency bandwidth for `f` blocks is reserved on every disk,
//! permanently. Admission then only needs the two conditions of §4.2:
//!
//! * **(a)** the number of clips serviced at a disk never exceeds
//!   `q − λ_max·f` (the paper's `q − f`; `λ_max = 1` for exact designs —
//!   for the balanced-fallback designs the worst-case reconstruction
//!   overlap between two disks is `λ_max` rows, so the reserve scales),
//! * **(b)** the number of clips retrieving blocks mapped to the same PGT
//!   row from one disk never exceeds `f`.
//!
//! Property 1 (any two sets in a PGT column share only that column's
//! disk) then bounds the failure-induced extra load on any disk by
//! `λ_max·f`, and Property 2 (row-following) keeps both conditions
//! invariant as service lists rotate — so checking at admission time
//! suffices.
//!
//! Both conditions are evaluated in O(1) from two count tables keyed by
//! *time-invariant* clip classes. A clip admitted on disk `s` at round
//! `t_adm` occupies ring phase `(s − t_adm) mod d` forever, and its PGT
//! row at round `t` is `(base + ⌊(phase + t)/d⌋) mod r` for the constant
//! `base = (row₀ − ⌊(phase + t_adm)/d⌋) mod r` — rows advance once per
//! ring wrap (Property 2), and `⌊(phase + t)/d⌋` counts exactly the wraps
//! a phase-`phase` clip has seen by round `t`, up to the per-clip constant
//! folded into `base`. So `(phase, base)` classifies clips once at
//! admission, and the per-disk / per-(disk, row) loads of any future round
//! are single table cells.

use crate::traits::{phase_of, Admission, AdmitRequest};
use cms_core::{CmsError, DiskId, RequestId, Scheme};
use std::collections::BTreeMap;

/// Admission controller for [`Scheme::DeclusteredParity`].
#[derive(Debug, Clone)]
pub struct DeclusteredAdmission {
    d: u32,
    r: u32,
    q: u32,
    f: u32,
    lambda_max: u32,
    t: u64,
    /// Active clips per ring phase (condition (a), indexed by `phase`).
    by_phase: Vec<u32>,
    /// Active clips per `(phase, base)` row class (condition (b),
    /// indexed by `phase·r + base`).
    by_phase_base: Vec<u32>,
    /// id → `(phase, base)`, for removal.
    active: BTreeMap<RequestId, (u32, u32)>,
}

impl DeclusteredAdmission {
    /// Creates a controller for a `d`-disk array with `r` PGT rows,
    /// per-round budget `q`, contingency `f`, and the design's pair
    /// multiplicity `λ_max` (1 for exact BIBDs).
    ///
    /// # Errors
    ///
    /// Returns [`CmsError::InvalidParams`] unless
    /// `1 ≤ λ_max·f < q` (there must be room for at least one clip after
    /// the reserve) and `d, r ≥ 1`.
    pub fn new(d: u32, r: u32, q: u32, f: u32, lambda_max: u32) -> Result<Self, CmsError> {
        if d == 0 || r == 0 {
            return Err(CmsError::invalid_params("need d >= 1 and r >= 1"));
        }
        if f == 0 || lambda_max == 0 {
            return Err(CmsError::invalid_params("need f >= 1 and λ_max >= 1"));
        }
        if lambda_max * f >= q {
            return Err(CmsError::invalid_params(format!(
                "reserve λ_max·f = {} leaves no room under q = {q}",
                lambda_max * f
            )));
        }
        Ok(DeclusteredAdmission {
            d,
            r,
            q,
            f,
            lambda_max,
            t: 0,
            by_phase: vec![0; d as usize],
            by_phase_base: vec![0; d as usize * r as usize],
            active: BTreeMap::new(),
        })
    }

    /// Per-disk clip capacity after the contingency reserve
    /// (`q − λ_max·f`).
    #[must_use]
    pub fn per_disk_capacity(&self) -> u32 {
        self.q - self.lambda_max * self.f
    }

    /// The contingency reservation `f`.
    #[must_use]
    pub fn contingency(&self) -> u32 {
        self.f
    }

    /// Time-invariant row class of a clip at `phase` whose PGT row is
    /// `row` at round `t`: rows advance once per ring wrap, so the row at
    /// any round `t'` is `(base + ⌊(phase + t')/d⌋) mod r` for this base.
    fn base_of(&self, phase: u32, row: u32, t: u64) -> u32 {
        let shift = ((u64::from(phase) + t) / u64::from(self.d)) % u64::from(self.r);
        ((u64::from(row) + u64::from(self.r) - shift) % u64::from(self.r)) as u32
    }

    /// Number of clips currently reading from `disk`, and how many of
    /// those read blocks mapped to `row`. O(1): two table lookups.
    fn loads(&self, disk: u32, row: u32) -> (u32, u32) {
        let phase = phase_of(disk, self.t, self.d);
        let base = self.base_of(phase, row, self.t);
        (
            self.by_phase[phase as usize],
            self.by_phase_base[phase as usize * self.r as usize + base as usize],
        )
    }

    /// The §4.2 verdict for a request, without mutating or allocating:
    /// `Ok((phase, base))` gives the class to record on admission.
    fn verdict(&self, req: &AdmitRequest) -> Result<(u32, u32), (u32, u32, bool)> {
        let disk = req.start_disk.raw();
        let phase = phase_of(disk, self.t, self.d);
        debug_assert!(req.row < self.r);
        let base = self.base_of(phase, req.row, self.t);
        let total = self.by_phase[phase as usize];
        if total >= self.per_disk_capacity() {
            return Err((total, 0, false));
        }
        let same_row = self.by_phase_base[phase as usize * self.r as usize + base as usize];
        if same_row >= self.f {
            return Err((total, same_row, true));
        }
        Ok((phase, base))
    }
}

impl Admission for DeclusteredAdmission {
    fn scheme(&self) -> Scheme {
        Scheme::DeclusteredParity
    }

    fn q(&self) -> u32 {
        self.q
    }

    fn try_admit(&mut self, req: AdmitRequest) -> Result<(), CmsError> {
        if req.row >= self.r {
            return Err(CmsError::invalid_params(format!(
                "row {} out of range (r = {})",
                req.row, self.r
            )));
        }
        let disk = req.start_disk.raw();
        match self.verdict(&req) {
            Err((total, _, false)) => Err(CmsError::rejected(format!(
                "disk {disk} serves {total} clips, capacity q − λf = {}",
                self.per_disk_capacity()
            ))),
            Err((_, same_row, true)) => Err(CmsError::rejected(format!(
                "disk {disk} row {} already serves {same_row} clips, f = {}",
                req.row, self.f
            ))),
            Ok((phase, base)) => {
                self.by_phase[phase as usize] += 1;
                self.by_phase_base[phase as usize * self.r as usize + base as usize] += 1;
                self.active.insert(req.id, (phase, base));
                Ok(())
            }
        }
    }

    fn check(&self, req: &AdmitRequest) -> bool {
        req.row < self.r && self.verdict(req).is_ok()
    }

    fn remove(&mut self, id: RequestId) {
        if let Some((phase, base)) = self.active.remove(&id) {
            self.by_phase[phase as usize] -= 1;
            self.by_phase_base[phase as usize * self.r as usize + base as usize] -= 1;
        }
    }

    fn advance_round(&mut self) {
        self.t += 1;
    }

    fn active(&self) -> usize {
        self.active.len()
    }

    fn worst_case_load(&self, disk: DiskId) -> u32 {
        // Normal service plus the static reserve the conditions protect:
        // at most f blocks per shared row, at most λ_max shared rows with
        // any failed disk.
        let (total, _) = self.loads(disk.raw(), 0);
        total + self.lambda_max * self.f
    }

    fn nominal_capacity(&self) -> u64 {
        // Per disk, condition (a) caps clips at q − λ_max·f and condition
        // (b) at f per row — whichever binds first.
        let per_disk = self.per_disk_capacity().min(self.r * self.f);
        u64::from(self.d) * u64::from(per_disk)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cms_core::RequestId;

    fn req(id: u64, disk: u32, row: u32) -> AdmitRequest {
        AdmitRequest {
            id: RequestId(id),
            stream: 0,
            start_index: 0,
            start_disk: DiskId(disk),
            row,
            len: 50,
        }
    }

    fn controller() -> DeclusteredAdmission {
        // d = 7, r = 3, q = 10, f = 2, λ = 1 → capacity 8 per disk,
        // 2 per (disk, row).
        DeclusteredAdmission::new(7, 3, 10, 2, 1).unwrap()
    }

    #[test]
    fn admits_until_row_limit() {
        let mut c = controller();
        assert!(c.try_admit(req(1, 0, 0)).is_ok());
        assert!(c.try_admit(req(2, 0, 0)).is_ok());
        // Third clip on (disk 0, row 0) exceeds f = 2.
        let err = c.try_admit(req(3, 0, 0)).unwrap_err();
        assert!(matches!(err, CmsError::AdmissionRejected { .. }));
        // ... but another row on the same disk is fine.
        assert!(c.try_admit(req(3, 0, 1)).is_ok());
    }

    #[test]
    fn admits_until_disk_capacity() {
        let mut c = controller();
        // Fill disk 0: rows 0,0,1,1,2,2 = 6 clips, then 2 more must fail
        // row-wise; capacity (8) is not yet the binding constraint.
        for (i, row) in [0u32, 0, 1, 1, 2, 2].iter().enumerate() {
            assert!(c.try_admit(req(i as u64, 0, *row)).is_ok(), "clip {i}");
        }
        assert!(c.try_admit(req(10, 0, 0)).is_err());
        assert_eq!(c.active(), 6);
        // r·f = 6 < q − f: the row constraint binds first, exactly the
        // effect computeOptimal's `r·f ≥ q − f` loop guards against.
    }

    #[test]
    fn rotation_keeps_relative_loads() {
        let mut c = controller();
        c.try_admit(req(1, 0, 0)).unwrap();
        c.try_admit(req(2, 0, 0)).unwrap();
        // After any number of rounds the pair still blocks a same-row
        // arrival on whatever disk they rotated to.
        for _ in 0..10 {
            c.advance_round();
        }
        // They are now on disk (0 + 10) mod 7 = 3; rows advanced by
        // wraps: (0 + 10)/7 = 1 wrap → row 1.
        let err = c.try_admit(req(3, 3, 1)).unwrap_err();
        assert!(matches!(err, CmsError::AdmissionRejected { .. }));
        // Row 0 on disk 3 is free.
        assert!(c.try_admit(req(4, 3, 0)).is_ok());
    }

    #[test]
    fn removal_frees_capacity() {
        let mut c = controller();
        c.try_admit(req(1, 2, 1)).unwrap();
        c.try_admit(req(2, 2, 1)).unwrap();
        assert!(c.try_admit(req(3, 2, 1)).is_err());
        c.remove(RequestId(1));
        assert!(c.try_admit(req(3, 2, 1)).is_ok());
        c.remove(RequestId(99)); // unknown id ignored
        assert_eq!(c.active(), 2);
    }

    #[test]
    fn worst_case_load_bounded_by_q() {
        let mut c = controller();
        for (i, row) in [0u32, 0, 1, 1, 2, 2].iter().enumerate() {
            c.try_admit(req(i as u64, 0, *row)).unwrap();
        }
        for disk in 0..7 {
            assert!(
                c.worst_case_load(DiskId(disk)) <= c.q(),
                "disk {disk} worst case exceeds q"
            );
        }
    }

    #[test]
    fn lambda_scaling_shrinks_capacity() {
        let exact = DeclusteredAdmission::new(32, 5, 20, 2, 1).unwrap();
        let relaxed = DeclusteredAdmission::new(32, 5, 20, 2, 3).unwrap();
        assert_eq!(exact.per_disk_capacity(), 18);
        assert_eq!(relaxed.per_disk_capacity(), 14);
    }

    #[test]
    fn constructor_validates() {
        assert!(DeclusteredAdmission::new(0, 3, 10, 1, 1).is_err());
        assert!(DeclusteredAdmission::new(7, 0, 10, 1, 1).is_err());
        assert!(DeclusteredAdmission::new(7, 3, 10, 0, 1).is_err());
        assert!(DeclusteredAdmission::new(7, 3, 10, 10, 1).is_err()); // f >= q
        assert!(DeclusteredAdmission::new(7, 3, 10, 4, 3).is_err()); // λf >= q
    }

    #[test]
    fn different_disks_are_independent() {
        let mut c = controller();
        for disk in 0..7u32 {
            for i in 0..2u64 {
                assert!(c.try_admit(req(u64::from(disk) * 10 + i, disk, 0)).is_ok());
            }
        }
        assert_eq!(c.active(), 14);
    }

    #[test]
    fn row_out_of_range_is_invalid_params() {
        let mut c = controller();
        assert!(matches!(
            c.try_admit(req(1, 0, 5)),
            Err(CmsError::InvalidParams { .. })
        ));
    }

    #[test]
    fn check_mirrors_try_admit_across_rotation() {
        // `check` must agree with `try_admit` for every (disk, row)
        // candidate at every rotation offset, as clips come and go.
        let mut c = controller();
        let mut id = 100u64;
        for round in 0..40u64 {
            for disk in 0..7u32 {
                for row in 0..4u32 {
                    id += 1;
                    let r = req(id, disk, row);
                    let predicted = c.check(&r);
                    let actual = c.try_admit(r).is_ok();
                    assert_eq!(predicted, actual, "round {round} disk {disk} row {row}");
                    if actual && id.is_multiple_of(3) {
                        c.remove(RequestId(id)); // churn
                    }
                }
            }
            c.advance_round();
        }
    }
}
