//! Admission for the three parity-disk schemes: pre-fetching with parity
//! disks (§6.1), streaming RAID (§7.3) and the non-clustered baseline
//! (§7.4). They share the clustered placement; their controllers differ
//! in fetch cadence and in whether failures are pre-paid.

use crate::traits::{Admission, AdmitRequest};
use cms_core::{CmsError, DiskId, RequestId, Scheme};
use std::collections::BTreeMap;

/// §6.1 controller: clusters of `p` disks with a dedicated parity disk.
///
/// With the staggered-group optimization a clip fetches its whole next
/// group — one block on each of its cluster's `p−1` data disks — every
/// `p−1` rounds, then idles. Clips therefore collide on a disk exactly
/// when they share both the *fetch cadence* (`t mod (p−1)`) and the
/// *cluster class* (cluster occupied at a common reference round), and
/// admission is a single counter per `(cadence, cluster-class)` slot,
/// capped at `q`. Failure reads hit only the cluster's parity disk, whose
/// bandwidth is otherwise idle — no contingency needed, which is the whole
/// selling point of the scheme.
#[derive(Debug, Clone)]
pub struct PrefetchParityDiskAdmission {
    clusters: u32,
    p: u32,
    cadences: u32, // k = p − m data disks per cluster
    q: u32,
    t: u64,
    /// `count[cadence][cluster_class]`.
    count: Vec<Vec<u32>>,
    active: BTreeMap<RequestId, (u32, u32)>,
}

impl PrefetchParityDiskAdmission {
    /// Creates a controller for `d` disks in clusters of `p`, budget `q`,
    /// with the paper's single parity disk per cluster.
    ///
    /// # Errors
    ///
    /// [`CmsError::InvalidParams`] unless `p | d`, `p ≥ 2`, `q ≥ 1`.
    pub fn new(d: u32, p: u32, q: u32) -> Result<Self, CmsError> {
        Self::with_redundancy(d, p, 1, q)
    }

    /// Creates a controller for clusters of `k = p − m` data disks plus
    /// `m` redundancy disks (GF(256) Reed–Solomon for `m ≥ 2`): a clip
    /// fetches its whole next group every `k` rounds, and a cluster keeps
    /// serving while at most `m` of its disks are down.
    ///
    /// # Errors
    ///
    /// [`CmsError::InvalidParams`] unless `p | d`, `p ≥ 2`, `q ≥ 1`,
    /// `1 ≤ m < p`.
    pub fn with_redundancy(d: u32, p: u32, m: u32, q: u32) -> Result<Self, CmsError> {
        validate_clustered(d, p, q)?;
        validate_redundancy(p, m)?;
        let cadences = (p - m).max(1);
        Ok(PrefetchParityDiskAdmission {
            clusters: d / p,
            p,
            cadences,
            q,
            t: 0,
            count: vec![vec![0; (d / p) as usize]; cadences as usize],
            active: BTreeMap::new(),
        })
    }

    fn slot(&self, start_cluster: u32) -> (u32, u32) {
        let cadence = (self.t % u64::from(self.cadences)) as u32;
        // The clip's cluster advances by one per fetch; its class is the
        // cluster it would occupy at round-0 cadence alignment.
        let fetches_so_far = (self.t / u64::from(self.cadences)) % u64::from(self.clusters);
        let class = ((u64::from(start_cluster) + u64::from(self.clusters)
            - fetches_so_far % u64::from(self.clusters))
            % u64::from(self.clusters)) as u32;
        (cadence, class)
    }
}

impl Admission for PrefetchParityDiskAdmission {
    fn scheme(&self) -> Scheme {
        Scheme::PrefetchParityDisks
    }

    fn q(&self) -> u32 {
        self.q
    }

    fn try_admit(&mut self, req: AdmitRequest) -> Result<(), CmsError> {
        let start_cluster = req.start_disk.raw() / self.p;
        if start_cluster >= self.clusters {
            return Err(CmsError::invalid_params("start disk out of range"));
        }
        let (cadence, class) = self.slot(start_cluster);
        let count = &mut self.count[cadence as usize][class as usize];
        if *count >= self.q {
            return Err(CmsError::rejected(format!(
                "cluster slot (cadence {cadence}, class {class}) full at q = {}",
                self.q
            )));
        }
        *count += 1;
        self.active.insert(req.id, (cadence, class));
        Ok(())
    }

    fn check(&self, req: &AdmitRequest) -> bool {
        let start_cluster = req.start_disk.raw() / self.p;
        if start_cluster >= self.clusters {
            return false;
        }
        let (cadence, class) = self.slot(start_cluster);
        self.count[cadence as usize][class as usize] < self.q
    }

    fn remove(&mut self, id: RequestId) {
        if let Some((cadence, class)) = self.active.remove(&id) {
            self.count[cadence as usize][class as usize] -= 1;
        }
    }

    fn advance_round(&mut self) {
        self.t += 1;
    }

    fn active(&self) -> usize {
        self.active.len()
    }

    fn worst_case_load(&self, disk: DiskId) -> u32 {
        // A data disk serves the clips fetching from its cluster this
        // round; each redundancy disk serves at most the same count after
        // a failure. Both are the slot count of (current cadence, the
        // class currently sitting on this cluster).
        let cluster = disk.raw() / self.p;
        let (cadence, class) = self.slot(cluster);
        self.count[cadence as usize][class as usize]
    }

    fn nominal_capacity(&self) -> u64 {
        // q clips per (cadence, cluster-class) slot: q·d(p−m)/p total.
        u64::from(self.cadences) * u64::from(self.clusters) * u64::from(self.q)
    }
}

/// §7.3 controller: streaming RAID. A cluster is one logical disk serving
/// at most `q` clips; all clips fetch whole parity groups in lock-step
/// *long rounds* of `p−1` standard rounds. Admission is one counter per
/// cluster class.
#[derive(Debug, Clone)]
pub struct StreamingRaidAdmission {
    clusters: u32,
    p: u32,
    /// Long-round length `k = p − m` in standard rounds.
    span: u32,
    q: u32,
    t: u64,
    count: Vec<u32>,
    active: BTreeMap<RequestId, u32>,
}

impl StreamingRaidAdmission {
    /// Creates a controller for `d` disks in clusters of `p`, with a
    /// per-cluster budget `q` and the paper's single parity disk.
    ///
    /// # Errors
    ///
    /// [`CmsError::InvalidParams`] unless `p | d`, `p ≥ 2`, `q ≥ 1`.
    pub fn new(d: u32, p: u32, q: u32) -> Result<Self, CmsError> {
        Self::with_redundancy(d, p, 1, q)
    }

    /// Creates a controller whose clusters stripe `k = p − m` data blocks
    /// plus `m` redundancy blocks per group; long rounds shrink to `k`
    /// standard rounds, and a cluster keeps its guarantees with up to `m`
    /// of its disks down.
    ///
    /// # Errors
    ///
    /// [`CmsError::InvalidParams`] unless `p | d`, `p ≥ 2`, `q ≥ 1`,
    /// `1 ≤ m < p`.
    pub fn with_redundancy(d: u32, p: u32, m: u32, q: u32) -> Result<Self, CmsError> {
        validate_clustered(d, p, q)?;
        validate_redundancy(p, m)?;
        Ok(StreamingRaidAdmission {
            clusters: d / p,
            p,
            span: (p - m).max(1),
            q,
            t: 0,
            count: vec![0; (d / p) as usize],
            active: BTreeMap::new(),
        })
    }

    /// Class of a clip that will make its *first* group fetch at the next
    /// long-round boundary (admissions mid-long-round start one boundary
    /// later — the paper's response-time quantization for this scheme).
    fn admit_class(&self, start_cluster: u32) -> u32 {
        let span = u64::from(self.span);
        let first_long_round = self.t.div_ceil(span);
        ((u64::from(start_cluster) + u64::from(self.clusters) * (1 + first_long_round)
            - first_long_round)
            % u64::from(self.clusters)) as u32
    }

    /// Class of the clips currently fetching from `cluster` (i.e. during
    /// the long round containing `self.t`).
    fn current_class(&self, cluster: u32) -> u32 {
        let span = u64::from(self.span);
        let long_round = self.t / span;
        ((u64::from(cluster) + u64::from(self.clusters) * (1 + long_round) - long_round)
            % u64::from(self.clusters)) as u32
    }
}

impl Admission for StreamingRaidAdmission {
    fn scheme(&self) -> Scheme {
        Scheme::StreamingRaid
    }

    fn q(&self) -> u32 {
        self.q
    }

    fn try_admit(&mut self, req: AdmitRequest) -> Result<(), CmsError> {
        let start_cluster = req.start_disk.raw() / self.p;
        if start_cluster >= self.clusters {
            return Err(CmsError::invalid_params("start disk out of range"));
        }
        let class = self.admit_class(start_cluster);
        if self.count[class as usize] >= self.q {
            return Err(CmsError::rejected(format!(
                "cluster class {class} full at q = {}",
                self.q
            )));
        }
        self.count[class as usize] += 1;
        self.active.insert(req.id, class);
        Ok(())
    }

    fn check(&self, req: &AdmitRequest) -> bool {
        let start_cluster = req.start_disk.raw() / self.p;
        start_cluster < self.clusters
            && self.count[self.admit_class(start_cluster) as usize] < self.q
    }

    fn remove(&mut self, id: RequestId) {
        if let Some(class) = self.active.remove(&id) {
            self.count[class as usize] -= 1;
        }
    }

    fn advance_round(&mut self) {
        self.t += 1;
    }

    fn active(&self) -> usize {
        self.active.len()
    }

    fn worst_case_load(&self, disk: DiskId) -> u32 {
        // Every disk of a cluster serves one block per clip per long
        // round, healthy or degraded (the parity block substitutes for
        // the lost one).
        let cluster = disk.raw() / self.p;
        self.count[self.current_class(cluster) as usize]
    }

    fn nominal_capacity(&self) -> u64 {
        // One class per cluster, q clips per class.
        u64::from(self.clusters) * u64::from(self.q)
    }
}

/// §7.4 controller: the non-clustered baseline. Clustered placement, but
/// double-buffered one-block-per-round retrieval, so clips collide by
/// *data-disk phase* exactly as in the declustered scheme — without any
/// contingency. `q` per phase, `q·d·(p−1)/p` total, best capacity of the
/// parity-disk family... until a disk fails.
#[derive(Debug, Clone)]
pub struct NonClusteredAdmission {
    data_disks: u32,
    q: u32,
    t: u64,
    count: Vec<u32>,
    active: BTreeMap<RequestId, u32>,
}

impl NonClusteredAdmission {
    /// Creates a controller for `d` disks in clusters of `p`, budget `q`.
    ///
    /// # Errors
    ///
    /// [`CmsError::InvalidParams`] unless `p | d`, `p ≥ 2`, `q ≥ 1`.
    pub fn new(d: u32, p: u32, q: u32) -> Result<Self, CmsError> {
        validate_clustered(d, p, q)?;
        let data_disks = d - d / p;
        Ok(NonClusteredAdmission {
            data_disks,
            q,
            t: 0,
            count: vec![0; data_disks as usize],
            active: BTreeMap::new(),
        })
    }

    /// Phase over the *data-disk ring* (parity disks excluded).
    fn phase(&self, data_disk_index: u32) -> u32 {
        let t = (self.t % u64::from(self.data_disks)) as u32;
        (data_disk_index + self.data_disks - t) % self.data_disks
    }
}

impl Admission for NonClusteredAdmission {
    fn scheme(&self) -> Scheme {
        Scheme::NonClustered
    }

    fn q(&self) -> u32 {
        self.q
    }

    fn try_admit(&mut self, req: AdmitRequest) -> Result<(), CmsError> {
        // `start_index mod data_disks` is the data-disk ring position of
        // the clip's first block under clustered striping.
        let ring = (req.start_index % u64::from(self.data_disks)) as u32;
        let phase = self.phase(ring);
        if self.count[phase as usize] >= self.q {
            return Err(CmsError::rejected(format!(
                "data-disk phase {phase} full at q = {}",
                self.q
            )));
        }
        self.count[phase as usize] += 1;
        self.active.insert(req.id, phase);
        Ok(())
    }

    fn check(&self, req: &AdmitRequest) -> bool {
        let ring = (req.start_index % u64::from(self.data_disks)) as u32;
        self.count[self.phase(ring) as usize] < self.q
    }

    fn remove(&mut self, id: RequestId) {
        if let Some(phase) = self.active.remove(&id) {
            self.count[phase as usize] -= 1;
        }
    }

    fn advance_round(&mut self) {
        self.t += 1;
    }

    fn active(&self) -> usize {
        self.active.len()
    }

    fn worst_case_load(&self, disk: DiskId) -> u32 {
        // Normal load only: the scheme reserves nothing for failures.
        // (After a failure its clusters read whole groups and CAN exceed
        // q — the simulator counts the resulting hiccups, reproducing the
        // §7.4 caveat.)
        let _ = disk;
        self.count.iter().copied().max().unwrap_or(0)
    }

    fn nominal_capacity(&self) -> u64 {
        // q clips per data-disk phase: q·d(p−1)/p total.
        u64::from(self.data_disks) * u64::from(self.q)
    }
}

fn validate_clustered(d: u32, p: u32, q: u32) -> Result<(), CmsError> {
    if p < 2 || p > d {
        return Err(CmsError::invalid_params("need 2 <= p <= d"));
    }
    if !d.is_multiple_of(p) {
        return Err(CmsError::invalid_params("need p | d"));
    }
    if q == 0 {
        return Err(CmsError::invalid_params("need q >= 1"));
    }
    Ok(())
}

fn validate_redundancy(p: u32, m: u32) -> Result<(), CmsError> {
    if m == 0 || m >= p {
        return Err(CmsError::invalid_params("need 1 <= m < p redundancy shards"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cms_core::RequestId;

    fn req(id: u64, disk: u32, index: u64) -> AdmitRequest {
        AdmitRequest {
            id: RequestId(id),
            stream: 0,
            start_index: index,
            start_disk: DiskId(disk),
            row: 0,
            len: 50,
        }
    }

    #[test]
    fn prefetch_fills_slots_up_to_q() {
        // d = 8, p = 4: 2 clusters, 3 cadences, q = 2.
        let mut c = PrefetchParityDiskAdmission::new(8, 4, 2).unwrap();
        assert!(c.try_admit(req(1, 0, 0)).is_ok());
        assert!(c.try_admit(req(2, 0, 0)).is_ok());
        // Same cadence (same round), same cluster: full.
        assert!(c.try_admit(req(3, 0, 0)).is_err());
        // Other cluster, same round: fine.
        assert!(c.try_admit(req(4, 4, 0)).is_ok());
        // Next round = different cadence: room again on cluster 0.
        c.advance_round();
        assert!(c.try_admit(req(5, 0, 0)).is_ok());
        assert_eq!(c.active(), 4);
    }

    #[test]
    fn prefetch_cluster_classes_rotate() {
        let mut c = PrefetchParityDiskAdmission::new(8, 4, 1).unwrap();
        c.try_admit(req(1, 0, 0)).unwrap();
        // After p−1 = 3 rounds the clip moved to cluster 1; admitting on
        // cluster 1 at the same cadence must now collide with it.
        for _ in 0..3 {
            c.advance_round();
        }
        assert!(c.try_admit(req(2, 4, 0)).is_err());
        assert!(c.try_admit(req(3, 0, 0)).is_ok());
    }

    #[test]
    fn prefetch_total_capacity_is_q_times_data_disks() {
        // q = 2, d = 8, p = 4: capacity 2 clusters × 3 cadences × 2 = 12
        // = q·d(p−1)/p.
        let mut c = PrefetchParityDiskAdmission::new(8, 4, 2).unwrap();
        let mut admitted = 0u64;
        for _cadence in 0..3u64 {
            for cluster in 0..2u32 {
                for _ in 0..2 {
                    admitted += 1;
                    assert!(c.try_admit(req(admitted, cluster * 4, 0)).is_ok());
                }
            }
            c.advance_round();
        }
        assert_eq!(c.active(), 12);
        // Any further admission at any cadence must fail.
        assert!(c.try_admit(req(99, 0, 0)).is_err());
        assert!(c.try_admit(req(100, 4, 0)).is_err());
    }

    #[test]
    fn streaming_raid_caps_per_cluster() {
        let mut c = StreamingRaidAdmission::new(8, 4, 3).unwrap();
        for i in 0..3u64 {
            assert!(c.try_admit(req(i, 0, 0)).is_ok());
        }
        assert!(c.try_admit(req(9, 0, 0)).is_err());
        assert!(c.try_admit(req(10, 4, 0)).is_ok());
        assert_eq!(c.worst_case_load(DiskId(0)), 3);
        assert_eq!(c.worst_case_load(DiskId(3)), 3); // parity disk too
    }

    #[test]
    fn streaming_raid_classes_advance_per_long_round() {
        let mut c = StreamingRaidAdmission::new(8, 4, 1).unwrap();
        // Admitted exactly on a boundary: fetches cluster 0 from round 0.
        c.try_admit(req(1, 0, 0)).unwrap();
        // t = 1 (mid long round): a clip starting on cluster 1 would make
        // its first fetch at round 3 — when clip 1 also reaches cluster 1.
        c.advance_round();
        assert!(c.try_admit(req(2, 4, 0)).is_err());
        // ... whereas a cluster-0 start at t = 1 never collides with it.
        assert!(c.try_admit(req(3, 0, 0)).is_ok());
        c.remove(RequestId(3));
        // After the boundary (t = 3) clip 1 fetches cluster 1; the
        // current-load view must say so.
        c.advance_round();
        c.advance_round();
        assert_eq!(c.worst_case_load(DiskId(4)), 1, "cluster 1 busy at t = 3");
        assert_eq!(c.worst_case_load(DiskId(0)), 0, "cluster 0 idle at t = 3");
    }

    #[test]
    fn non_clustered_caps_per_phase() {
        // d = 8, p = 4: 6 data disks.
        let mut c = NonClusteredAdmission::new(8, 4, 2).unwrap();
        assert!(c.try_admit(req(1, 0, 0)).is_ok());
        assert!(c.try_admit(req(2, 0, 0)).is_ok());
        assert!(c.try_admit(req(3, 0, 0)).is_err());
        assert!(c.try_admit(req(4, 1, 1)).is_ok());
        c.remove(RequestId(1));
        assert!(c.try_admit(req(3, 0, 0)).is_ok());
    }

    #[test]
    fn non_clustered_total_capacity() {
        let mut c = NonClusteredAdmission::new(8, 4, 2).unwrap();
        let mut id = 0u64;
        for ring in 0..6u64 {
            for _ in 0..2 {
                id += 1;
                assert!(c.try_admit(req(id, 0, ring)).is_ok());
            }
        }
        assert_eq!(c.active(), 12); // q·d(p−1)/p = 2·6
        assert!(c.try_admit(req(99, 0, 3)).is_err());
    }

    #[test]
    fn constructors_validate() {
        assert!(PrefetchParityDiskAdmission::new(9, 4, 1).is_err());
        assert!(StreamingRaidAdmission::new(8, 3, 1).is_err());
        assert!(NonClusteredAdmission::new(8, 4, 0).is_err());
        assert!(PrefetchParityDiskAdmission::new(8, 1, 1).is_err());
    }

    #[test]
    fn redundancy_shrinks_cadences_and_capacity() {
        // (d = 8, p = 4, m = 2): k = 2 data disks per cluster, so 2
        // cadences and capacity q·d(p−m)/p = 1·8·2/4 = 4.
        let mut c = PrefetchParityDiskAdmission::with_redundancy(8, 4, 2, 1).unwrap();
        assert_eq!(c.nominal_capacity(), 4);
        c.try_admit(req(1, 0, 0)).unwrap();
        // After k = 2 rounds the clip moved on to cluster 1.
        c.advance_round();
        c.advance_round();
        assert!(c.try_admit(req(2, 4, 0)).is_err());
        assert!(c.try_admit(req(3, 0, 0)).is_ok());

        let s = StreamingRaidAdmission::with_redundancy(8, 4, 2, 3).unwrap();
        assert_eq!(s.nominal_capacity(), 6);

        assert!(PrefetchParityDiskAdmission::with_redundancy(8, 4, 0, 2).is_err());
        assert!(PrefetchParityDiskAdmission::with_redundancy(8, 4, 4, 2).is_err());
        assert!(StreamingRaidAdmission::with_redundancy(8, 4, 5, 3).is_err());
    }

    #[test]
    fn mirroring_p2_has_single_cadence() {
        let mut c = PrefetchParityDiskAdmission::new(8, 2, 2).unwrap();
        // 4 clusters of (1 data + 1 parity); every round is a fetch round.
        assert!(c.try_admit(req(1, 0, 0)).is_ok());
        assert!(c.try_admit(req(2, 0, 0)).is_ok());
        assert!(c.try_admit(req(3, 0, 0)).is_err());
        c.advance_round();
        // p−1 = 1 cadence: still the same slot family, now rotated one
        // cluster on.
        assert!(c.try_admit(req(4, 2, 0)).is_err());
    }
}
