//! Property-based tests for the admission controllers: arbitrary
//! interleavings of admit / remove / advance must never let the
//! worst-case per-disk load exceed the budget `q`, and removals must
//! exactly undo admissions.

use cms_admission::{
    Admission, AdmitRequest, DeclusteredAdmission, DynamicAdmission, FlatAdmission,
    NonClusteredAdmission, PrefetchParityDiskAdmission, StreamingRaidAdmission,
};
use cms_bibd::{best_design, DesignRequest, Pgt};
use cms_core::{DiskId, RequestId};
use proptest::prelude::*;

/// One step of a random admission-control workload.
#[derive(Debug, Clone)]
enum Op {
    Admit { disk: u32, row: u32, stream: u32, index: u64 },
    RemoveOldest,
    Advance,
}

fn op_strategy(d: u32, rows: u32) -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0..d, 0..rows, 0..rows, 0u64..10_000).prop_map(|(disk, row, stream, index)| {
            Op::Admit { disk, row, stream, index }
        }),
        2 => Just(Op::RemoveOldest),
        2 => Just(Op::Advance),
    ]
}

/// Drives a controller through the ops; returns the max worst-case load
/// observed across all disks and steps.
fn drive(ctrl: &mut dyn Admission, ops: &[Op], d: u32) -> u32 {
    let mut next_id = 0u64;
    let mut live: Vec<RequestId> = Vec::new();
    let mut worst = 0u32;
    for op in ops {
        match op {
            Op::Admit { disk, row, stream, index } => {
                let id = RequestId(next_id);
                next_id += 1;
                let req = AdmitRequest {
                    id,
                    stream: *stream,
                    start_index: *index,
                    start_disk: DiskId(*disk),
                    row: *row,
                    len: 50,
                };
                if ctrl.try_admit(req).is_ok() {
                    live.push(id);
                }
            }
            Op::RemoveOldest => {
                if !live.is_empty() {
                    let id = live.remove(0);
                    ctrl.remove(id);
                }
            }
            Op::Advance => ctrl.advance_round(),
        }
        for disk in 0..d {
            worst = worst.max(ctrl.worst_case_load(DiskId(disk)));
        }
        assert_eq!(ctrl.active(), live.len());
    }
    worst
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn declustered_never_exceeds_q(ops in prop::collection::vec(op_strategy(7, 3), 1..120)) {
        let q = 8;
        let mut ctrl = DeclusteredAdmission::new(7, 3, q, 2, 1).unwrap();
        let worst = drive(&mut ctrl, &ops, 7);
        prop_assert!(worst <= q, "worst-case load {worst} > q {q}");
    }

    #[test]
    fn dynamic_never_exceeds_q(ops in prop::collection::vec(op_strategy(7, 3), 1..120)) {
        let design = best_design(DesignRequest::new(7, 3)).unwrap();
        let pgt = Pgt::new(&design);
        let deltas = (0..pgt.rows()).map(|r| pgt.row_deltas(r)).collect();
        let q = 8;
        let mut ctrl = DynamicAdmission::new(7, q, deltas).unwrap();
        let worst = drive(&mut ctrl, &ops, 7);
        prop_assert!(worst <= q, "worst-case load {worst} > q {q}");
    }

    #[test]
    fn flat_exceeds_q_by_at_most_the_drift_bound(
        ops in prop::collection::vec(op_strategy(9, 4), 1..120)
    ) {
        // Condition (b)'s parity classes drift by ±1 when clips of
        // different phases cross a row boundary at different fetch cycles
        // (see the cms-admission::flat module docs), so the *controller's*
        // worst-case estimate can transiently read q+1. The scheme's
        // guarantee still holds because a prefetched group gives every
        // failure-mode parity read a p−1-round deadline window — the
        // simulator-level tests assert zero hiccups under failure.
        let q = 7;
        let mut ctrl = FlatAdmission::new(9, 4, q, 2).unwrap();
        let worst = drive(&mut ctrl, &ops, 9);
        prop_assert!(worst <= q + 1, "worst-case load {worst} > q+1 = {}", q + 1);
    }

    #[test]
    fn clustered_schemes_never_exceed_q(ops in prop::collection::vec(op_strategy(8, 3), 1..120)) {
        let q = 5;
        let mut prefetch = PrefetchParityDiskAdmission::new(8, 4, q).unwrap();
        let worst = drive(&mut prefetch, &ops, 8);
        prop_assert!(worst <= q);

        let mut raid = StreamingRaidAdmission::new(8, 4, q).unwrap();
        let worst = drive(&mut raid, &ops, 8);
        prop_assert!(worst <= q);

        let mut nc = NonClusteredAdmission::new(8, 4, q).unwrap();
        let worst = drive(&mut nc, &ops, 8);
        prop_assert!(worst <= q);
    }

    /// Removing everything always returns the controller to zero load.
    #[test]
    fn full_removal_resets_load(ops in prop::collection::vec(op_strategy(7, 3), 1..80)) {
        let mut ctrl = DeclusteredAdmission::new(7, 3, 8, 2, 1).unwrap();
        let mut live = Vec::new();
        let mut next = 0u64;
        for op in &ops {
            if let Op::Admit { disk, row, stream, index } = op {
                let id = RequestId(next);
                next += 1;
                let req = AdmitRequest {
                    id,
                    stream: *stream,
                    start_index: *index,
                    start_disk: DiskId(*disk),
                    row: *row,
                    len: 50,
                };
                if ctrl.try_admit(req).is_ok() {
                    live.push(id);
                }
            }
        }
        for id in live {
            ctrl.remove(id);
        }
        prop_assert_eq!(ctrl.active(), 0);
        for disk in 0..7 {
            // Only the static reserve remains.
            prop_assert!(ctrl.worst_case_load(DiskId(disk)) <= 2);
        }
    }
}
