//! `Admission::nominal_capacity` across all six controllers.
//!
//! The engine's degraded-mode cap is `nominal_capacity × healthy/d`
//! (zero for NonClustered or a double outage), and the conformance
//! harness holds measured capacity to the model bound through these
//! values — so each controller's formula gets pinned here, plus one
//! fill-to-the-brim consistency check where admission is cheap to
//! drive exhaustively.

use cms_admission::{
    Admission, AdmitRequest, DeclusteredAdmission, DynamicAdmission, FlatAdmission,
    NonClusteredAdmission, PrefetchParityDiskAdmission, StreamingRaidAdmission,
};
use cms_core::{DiskId, RequestId};

fn req(id: u64, start_disk: u32) -> AdmitRequest {
    AdmitRequest {
        id: RequestId(id),
        stream: 0,
        start_index: u64::from(start_disk),
        start_disk: DiskId(start_disk),
        row: 0,
        len: 40,
    }
}

#[test]
fn declustered_takes_the_binding_condition() {
    // Condition (a) binds: q − λ·f = 10 − 1·2 = 8 < r·f = 8·2.
    let a = DeclusteredAdmission::new(8, 8, 10, 2, 1).unwrap();
    assert_eq!(a.nominal_capacity(), 8 * 8);
    // Condition (b) binds: r·f = 2·1 = 2 < q − λ·f = 9.
    let b = DeclusteredAdmission::new(8, 2, 10, 1, 1).unwrap();
    assert_eq!(b.nominal_capacity(), 8 * 2);
}

#[test]
fn dynamic_withholds_one_block_per_disk() {
    let c = DynamicAdmission::new(8, 6, vec![vec![1, 2, 3]]).unwrap();
    assert_eq!(c.nominal_capacity(), 8 * (6 - 1));
    // q = 1 saturates the subtraction instead of underflowing.
    let tight = DynamicAdmission::new(8, 1, vec![vec![1]]).unwrap();
    assert_eq!(tight.nominal_capacity(), 0);
}

#[test]
fn flat_reserves_contingency_on_every_disk() {
    let c = FlatAdmission::new(9, 4, 5, 1).unwrap();
    assert_eq!(c.nominal_capacity(), 9 * (5 - 1));
}

#[test]
fn prefetch_parity_disks_counts_cadence_by_cluster_slots() {
    // (p−1) cadences × d/p clusters × q each = q·d(p−1)/p.
    let c = PrefetchParityDiskAdmission::new(8, 4, 6).unwrap();
    assert_eq!(c.nominal_capacity(), 3 * 2 * 6);
}

#[test]
fn streaming_raid_counts_one_class_per_cluster() {
    let c = StreamingRaidAdmission::new(8, 4, 6).unwrap();
    assert_eq!(c.nominal_capacity(), 2 * 6);
}

#[test]
fn non_clustered_counts_data_disk_phases() {
    // d(p−1)/p data disks, q per phase — the §7.4 best-until-failure
    // capacity of the parity-disk family.
    let c = NonClusteredAdmission::new(8, 4, 6).unwrap();
    assert_eq!(c.nominal_capacity(), 6 * 6);
}

#[test]
fn streaming_raid_admits_exactly_its_nominal_capacity() {
    let mut c = StreamingRaidAdmission::new(8, 4, 3).unwrap();
    let nominal = c.nominal_capacity();
    let mut admitted = 0u64;
    let mut id = 0u64;
    for cluster in 0..2u32 {
        for _ in 0..10 {
            if c.try_admit(req(id, cluster * 4)).is_ok() {
                admitted += 1;
            }
            id += 1;
        }
    }
    assert_eq!(
        admitted, nominal,
        "greedy same-round fill must stop exactly at the nominal capacity"
    );
    assert_eq!(c.active() as u64, nominal);
}
