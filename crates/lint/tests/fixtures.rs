//! The fixture workspace under `fixtures/ws` contains one known-bad
//! snippet per rule; this test locks the analyzer to the exact
//! `file:line:rule` set in `fixtures/expected.txt`.

use std::path::Path;

#[test]
fn fixture_workspace_produces_exactly_the_expected_diagnostics() {
    let fixtures = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let report = cms_lint::analyze_workspace(&fixtures.join("ws"));
    assert!(report.unreadable.is_empty(), "unreadable: {:?}", report.unreadable);

    let actual: Vec<String> = report
        .diagnostics
        .iter()
        .map(|d| format!("{}:{}:{}", d.file, d.line, d.rule))
        .collect();
    let expected: Vec<String> = std::fs::read_to_string(fixtures.join("expected.txt"))
        .expect("expected.txt readable")
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_string)
        .collect();
    assert_eq!(actual, expected, "full diagnostics: {:#?}", report.diagnostics);

    // The test-class fixture file must contribute nothing.
    assert!(report.diagnostics.iter().all(|d| !d.file.contains("tests/")));
    // Every rule of the catalogue except D002-in-bench appears at least
    // once, so the fixtures exercise the whole catalogue.
    for rule in ["D001", "D002", "D003", "P001", "P002", "H001", "L000"] {
        assert!(
            report.diagnostics.iter().any(|d| d.rule == rule),
            "no fixture covers {rule}"
        );
    }
}
