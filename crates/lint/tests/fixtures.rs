//! The fixture workspace under `fixtures/ws` contains one known-bad
//! snippet per rule; this test locks the analyzer to the exact
//! `file:line:rule` set in `fixtures/expected.txt`.

use std::path::Path;

#[test]
fn fixture_workspace_produces_exactly_the_expected_diagnostics() {
    let fixtures = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let report = cms_lint::analyze_workspace(&fixtures.join("ws"));
    assert!(report.unreadable.is_empty(), "unreadable: {:?}", report.unreadable);

    let actual: Vec<String> = report
        .diagnostics
        .iter()
        .map(|d| format!("{}:{}:{}", d.file, d.line, d.rule))
        .collect();
    let expected: Vec<String> = std::fs::read_to_string(fixtures.join("expected.txt"))
        .expect("expected.txt readable")
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_string)
        .collect();
    assert_eq!(actual, expected, "full diagnostics: {:#?}", report.diagnostics);

    // The test-class fixture file must contribute nothing.
    assert!(report.diagnostics.iter().all(|d| !d.file.contains("tests/")));
    // Every rule of the catalogue except D002-in-bench appears at least
    // once, so the fixtures exercise the whole catalogue.
    for rule in ["D001", "D002", "D003", "P001", "P002", "P003", "H001", "L000", "D004", "D005"] {
        assert!(
            report.diagnostics.iter().any(|d| d.rule == rule),
            "no fixture covers {rule}"
        );
    }

    // The interprocedural findings must carry full source-to-sink
    // provenance. D004: the fixture chain crosses from the deterministic
    // crate into the timing crate, two calls deep.
    let d004 = report
        .diagnostics
        .iter()
        .find(|d| d.rule == "D004")
        .expect("D004 fixture finding");
    assert_eq!(
        d004.chain,
        vec![
            "cms-sim::taint::tainted_entry",
            "cms-bench::clock::wrap_stamp",
            "cms-bench::clock::stamp_now",
        ],
        "D004 chain: {:?}",
        d004.chain
    );
    assert!(d004.message.contains("Instant::now"), "{}", d004.message);
    assert!(
        d004.message.contains("crates/bench/src/clock.rs:5"),
        "sink location in message: {}",
        d004.message
    );
    // P003: hot root -> allocating helper.
    let p003 = report
        .diagnostics
        .iter()
        .find(|d| d.rule == "P003")
        .expect("P003 fixture finding");
    assert_eq!(
        p003.chain,
        vec!["cms-sim::taint::hot_entry", "cms-sim::taint::helper_fill"],
        "P003 chain: {:?}",
        p003.chain
    );
    assert!(p003.message.contains("Vec::new"), "{}", p003.message);
    // Rendered form carries the chain for grep-ability.
    assert!(
        d004.render().contains("[via cms-sim::taint::tainted_entry -> "),
        "{}",
        d004.render()
    );
}
