//! End-to-end tests of the `cms-lint` binary: the baseline ratchet
//! life-cycle on a scratch workspace, and the self-check that this
//! repository passes with its committed baseline.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_cms-lint")
}

fn run(root: &Path, args: &[&str]) -> Output {
    Command::new(bin())
        .arg("--root")
        .arg(root)
        .args(args)
        .output()
        .expect("cms-lint binary runs")
}

/// A scratch workspace with one clean deterministic crate; removed on
/// drop.
struct Scratch {
    root: PathBuf,
}

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let root = std::env::temp_dir().join(format!("cms-lint-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        let src = root.join("crates/sim/src");
        fs::create_dir_all(&src).expect("mkdir scratch");
        fs::write(root.join("Cargo.toml"), "[workspace]\nmembers = [\"crates/*\"]\n")
            .expect("write root manifest");
        fs::write(
            root.join("crates/sim/Cargo.toml"),
            "[package]\nname = \"cms-sim\"\nversion = \"0.0.0\"\nedition = \"2021\"\n",
        )
        .expect("write member manifest");
        fs::write(
            src.join("lib.rs"),
            "#![forbid(unsafe_code)]\npub fn ok() -> u32 { 1 }\n",
        )
        .expect("write lib.rs");
        Scratch { root }
    }

    fn lib_rs(&self) -> PathBuf {
        self.root.join("crates/sim/src/lib.rs")
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

#[test]
fn ratchet_lifecycle_add_fails_remove_shrinks() {
    let ws = Scratch::new("ratchet");

    // Clean workspace, no baseline: passes.
    let out = run(&ws.root, &[]);
    assert!(out.status.success(), "clean run failed: {}", String::from_utf8_lossy(&out.stdout));

    // Introduce a P001 violation: fails (no baseline entry covers it).
    fs::write(
        ws.lib_rs(),
        "#![forbid(unsafe_code)]\npub fn bad(v: Option<u32>) -> u32 { v.unwrap() }\n",
    )
    .expect("write violation");
    let out = run(&ws.root, &[]);
    assert!(!out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("ratchet regression"), "{text}");

    // Baseline the debt: now carried, run passes and reports the count.
    let out = run(&ws.root, &["--update-baseline"]);
    assert!(out.status.success());
    let baseline = fs::read_to_string(ws.root.join("lint-baseline.txt")).expect("baseline file");
    assert!(baseline.contains("P001 crates/sim/src/lib.rs 1"), "{baseline}");
    let out = run(&ws.root, &[]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("1 carried"));

    // A second violation on top of the baseline: fails again.
    fs::write(
        ws.lib_rs(),
        "#![forbid(unsafe_code)]\npub fn bad(v: Option<u32>) -> u32 { v.unwrap() }\npub fn worse(v: Option<u32>) -> u32 { v.expect(\"no\") }\n",
    )
    .expect("write second violation");
    let out = run(&ws.root, &[]);
    assert!(!out.status.success());

    // Fix both: the stale baseline itself now fails the run, forcing the
    // improvement to be locked in …
    fs::write(ws.lib_rs(), "#![forbid(unsafe_code)]\npub fn ok() -> u32 { 1 }\n")
        .expect("write fix");
    let out = run(&ws.root, &[]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("stale baseline"));

    // … and --update-baseline shrinks it back to empty.
    let out = run(&ws.root, &["--update-baseline"]);
    assert!(out.status.success());
    let baseline = fs::read_to_string(ws.root.join("lint-baseline.txt")).expect("baseline file");
    assert!(!baseline.contains("P001"), "{baseline}");
    let out = run(&ws.root, &[]);
    assert!(out.status.success());
}

#[test]
fn update_baseline_prunes_entries_for_deleted_files() {
    let ws = Scratch::new("prune");
    // Two files carrying P001 debt, both baselined.
    fs::write(
        ws.lib_rs(),
        "#![forbid(unsafe_code)]\npub mod extra;\npub fn bad(v: Option<u32>) -> u32 { v.unwrap() }\n",
    )
    .expect("write lib violation");
    let extra = ws.root.join("crates/sim/src/extra.rs");
    fs::write(&extra, "pub fn also_bad(v: Option<u32>) -> u32 { v.unwrap() }\n")
        .expect("write extra violation");
    let out = run(&ws.root, &["--update-baseline"]);
    assert!(out.status.success());
    let baseline = fs::read_to_string(ws.root.join("lint-baseline.txt")).expect("baseline");
    assert!(baseline.contains("P001 crates/sim/src/extra.rs 1"), "{baseline}");
    assert!(baseline.contains("P001 crates/sim/src/lib.rs 1"), "{baseline}");

    // Delete one file (and its mod decl). Its baseline entry is now
    // stale, which fails the run rather than rotting silently …
    fs::remove_file(&extra).expect("delete extra.rs");
    fs::write(
        ws.lib_rs(),
        "#![forbid(unsafe_code)]\npub fn bad(v: Option<u32>) -> u32 { v.unwrap() }\n",
    )
    .expect("drop mod decl");
    let out = run(&ws.root, &[]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("stale baseline"));

    // … and regenerating prunes the dead entry while keeping the live one.
    let out = run(&ws.root, &["--update-baseline"]);
    assert!(out.status.success());
    let baseline = fs::read_to_string(ws.root.join("lint-baseline.txt")).expect("baseline");
    assert!(!baseline.contains("extra.rs"), "stale entry survived: {baseline}");
    assert!(baseline.contains("P001 crates/sim/src/lib.rs 1"), "{baseline}");
    let out = run(&ws.root, &[]);
    assert!(out.status.success());
}

#[test]
fn graph_dot_export_renders_the_scratch_workspace() {
    let ws = Scratch::new("dot");
    fs::write(
        ws.lib_rs(),
        "#![forbid(unsafe_code)]\npub fn leaf() -> u32 { 1 }\npub fn root() -> u32 { leaf() }\n",
    )
    .expect("write lib");
    let out = run(&ws.root, &["--graph", "dot"]);
    assert!(out.status.success());
    let dot = String::from_utf8_lossy(&out.stdout);
    assert!(dot.starts_with("digraph cms_callgraph"), "{dot}");
    assert!(dot.contains("cluster_cms_sim"), "{dot}");
    assert!(dot.contains("crate::leaf"), "{dot}");
    assert!(dot.contains("->"), "edge missing: {dot}");
}

#[test]
fn hard_rules_cannot_be_baselined() {
    let ws = Scratch::new("hard");
    // A D001 violation in the deterministic crate.
    fs::write(
        ws.lib_rs(),
        "#![forbid(unsafe_code)]\nuse std::collections::HashMap;\npub type T = HashMap<u32, u32>;\n",
    )
    .expect("write violation");
    // --update-baseline refuses to launder it …
    let out = run(&ws.root, &["--update-baseline"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("cannot be baselined"));
    // … and a hand-forged baseline entry is rejected as corrupt.
    fs::write(ws.root.join("lint-baseline.txt"), "D001 crates/sim/src/lib.rs 2\n")
        .expect("forge baseline");
    let out = run(&ws.root, &[]);
    assert_eq!(out.status.code(), Some(2), "forged baseline must be a hard error");
}

#[test]
fn json_output_is_emitted_and_flags_failure() {
    let ws = Scratch::new("json");
    fs::write(
        ws.lib_rs(),
        "#![forbid(unsafe_code)]\npub fn bad(v: Option<u32>) -> u32 { v.unwrap() }\n",
    )
    .expect("write violation");
    let out = run(&ws.root, &["--json"]);
    assert!(!out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("\"rule\": \"P001\""), "{text}");
    assert!(text.contains("\"ok\": false"), "{text}");
}

/// The repository itself must lint clean against its committed baseline —
/// the same invocation CI runs.
#[test]
fn workspace_self_check_passes_with_committed_baseline() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let out = run(&root, &[]);
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "workspace lint failed:\n{text}");
    assert!(text.contains("PASS"), "{text}");
    // The interprocedural contract holds workspace-wide: no unannotated
    // determinism taint and no unvetted shared state anywhere.
    assert!(text.contains("D004=0"), "{text}");
    assert!(text.contains("D005=0"), "{text}");
}
