//! Deterministic-crate fixture: D001, P001, P002, L000 and D003 all fire here.
#![forbid(unsafe_code)]

use std::collections::HashMap;

pub fn order(xs: &[u64]) -> Vec<u64> {
    let seen: HashMap<u64, u64> = HashMap::new();
    xs.iter().map(|x| seen[x]).collect()
}

pub fn risky(v: Option<u32>) -> u32 {
    v.unwrap()
}

// lint: allow(P001)
pub fn shaky(v: Option<u32>) -> u32 { v.expect("bare directive suppresses nothing") }

// lint: allow(P001) fixture demonstrates a justified, documented panic
pub fn excused(v: Option<u32>) -> u32 { v.expect("excused") }

pub fn total(handles: Vec<std::thread::JoinHandle<f64>>) -> f64 {
    handles.into_iter().map(|h| h.join().unwrap_or(0.0)).sum()
}

// lint: hot
pub fn hot_path(xs: &[u64], out: &mut Vec<u64>) {
    let mut tmp = Vec::new();
    tmp.extend(xs.iter().copied());
    out.extend(tmp);
}
