//! D005 fixtures: shared state in deterministic lib code, plus the
//! reasoned allow that suppresses it.

pub fn tally(m: &Mutex<u64>) -> u64 {
    *m.lock().unwrap_or_else(|e| e.into_inner())
}

pub fn racy(c: &AtomicU64) -> u64 {
    c.fetch_add(1, Ordering::Relaxed)
}

// lint: allow(D005) fixture: vetted SeqCst read outside the round loop
pub fn vetted(c: &AtomicU64) -> u64 {
    c.load(Ordering::SeqCst)
}
