//! Interprocedural fixtures: a D004 chain two calls deep ending at a
//! cross-crate wall-clock sink, and a P003 hot -> helper -> Vec::new.

pub fn tainted_entry() -> u32 {
    cms_bench::wrap_stamp()
}

// lint: hot
pub fn hot_entry(out: &mut Vec<u64>) {
    helper_fill(out);
}

pub fn helper_fill(out: &mut Vec<u64>) {
    let tmp: Vec<u64> = Vec::new();
    out.extend(tmp);
}
