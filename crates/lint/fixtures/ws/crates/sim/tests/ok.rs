// Test sources are outside the contract: nothing in here may fire.
#[test]
fn unwraps_are_fine_in_tests() {
    let v: Option<u32> = Some(1);
    v.unwrap();
}
