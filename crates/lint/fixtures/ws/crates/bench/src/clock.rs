//! Timing-crate fixture: the wall clock is legal here (D002 exempts
//! cms-bench), but a deterministic-crate chain into it is D004 fodder.

pub fn stamp_now() -> u32 {
    let _t = Instant::now();
    7
}

pub fn wrap_stamp() -> u32 {
    stamp_now()
}
