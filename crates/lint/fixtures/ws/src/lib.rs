//! Known-bad crate root: missing forbid(unsafe_code), wall clock, entropy.

pub fn stamp() -> std::time::Duration {
    let t0 = Instant::now();
    t0.elapsed()
}

pub fn entropy() -> u64 {
    let mut rng = thread_rng();
    rng.gen()
}
