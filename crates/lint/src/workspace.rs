//! Workspace discovery: which `.rs` files to analyze, how each is
//! classified, and which crate it belongs to.
//!
//! The walker scans the conventional cargo layout only — `src/`, `tests/`,
//! `benches/`, `examples/` at the workspace root and under each
//! `crates/*` member — so vendored facades (`vendor/`), build output
//! (`target/`) and lint fixtures (`fixtures/`) are never linted. Results
//! are sorted by path, making every report deterministic.

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::path::{Path, PathBuf};

/// How a source file participates in the build — this decides which rules
/// apply to it (see the catalogue in `rules`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// Library code: the deterministic replay contract and the no-panic
    /// contract both apply.
    Lib,
    /// Binary target root (`src/main.rs`, `src/bin/*.rs`): crate root
    /// hygiene applies, panics are tolerated (a CLI may die loudly).
    Bin,
    /// Integration / unit-test source under a `tests/` directory.
    Test,
    /// Criterion bench source under `benches/`.
    Bench,
    /// Example under `examples/`.
    Example,
    /// A `build.rs` build script.
    Build,
}

/// One file scheduled for analysis.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Path relative to the workspace root, with `/` separators.
    pub rel_path: String,
    /// Absolute path on disk.
    pub abs_path: PathBuf,
    /// Build-role classification.
    pub class: FileClass,
    /// Cargo package name (e.g. `cms-sim`), used for per-crate rule
    /// scoping.
    pub crate_name: String,
}

impl SourceFile {
    /// Is this file a crate root that must carry
    /// `#![forbid(unsafe_code)]`? Lib roots, `src/main.rs` and
    /// `src/bin/*.rs` are; tests, benches and examples are dev-only
    /// targets and exempt.
    #[must_use]
    pub fn is_crate_root(&self) -> bool {
        self.rel_path.ends_with("src/lib.rs")
            || self.rel_path.ends_with("src/main.rs")
            || self.rel_path.contains("/src/bin/")
            || self.rel_path.starts_with("src/bin/")
    }
}

/// Classifies a workspace-relative path.
#[must_use]
pub fn classify(rel_path: &str) -> FileClass {
    let in_dir = |dir: &str| {
        rel_path.starts_with(&format!("{dir}/")) || rel_path.contains(&format!("/{dir}/"))
    };
    if rel_path.ends_with("build.rs") {
        FileClass::Build
    } else if in_dir("tests") {
        FileClass::Test
    } else if in_dir("benches") {
        FileClass::Bench
    } else if in_dir("examples") {
        FileClass::Example
    } else if rel_path.ends_with("src/main.rs") || in_dir("bin") {
        FileClass::Bin
    } else {
        FileClass::Lib
    }
}

/// Reads the `name = "..."` of a `Cargo.toml`, if present.
fn package_name(manifest: &Path) -> Option<String> {
    let text = fs::read_to_string(manifest).ok()?;
    for line in text.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("name") {
            let rest = rest.trim_start();
            if let Some(rest) = rest.strip_prefix('=') {
                let v = rest.trim().trim_matches('"');
                if !v.is_empty() {
                    return Some(v.to_string());
                }
            }
        }
    }
    None
}

/// The crate a workspace-relative path belongs to: the member package for
/// `crates/<dir>/…`, the root package otherwise. Falls back to a
/// name derived from the directory when no manifest is readable (keeps
/// fixture trees and synthetic test workspaces working without
/// boilerplate).
fn crate_of(root: &Path, rel_path: &str) -> String {
    if let Some(rest) = rel_path.strip_prefix("crates/") {
        if let Some(dir) = rest.split('/').next() {
            return package_name(&root.join("crates").join(dir).join("Cargo.toml"))
                .unwrap_or_else(|| format!("cms-{dir}"));
        }
    }
    package_name(&root.join("Cargo.toml")).unwrap_or_else(|| "root".to_string())
}

/// Dependency keys of one manifest's `[dependencies]` section (the key
/// is the package name for both `foo.workspace = true` and
/// `foo = { ... }` forms). Dev-dependencies are ignored: test code is
/// outside the lint contract.
fn manifest_deps(manifest: &Path) -> BTreeSet<String> {
    let mut deps = BTreeSet::new();
    let Ok(text) = fs::read_to_string(manifest) else { return deps };
    let mut in_deps = false;
    for line in text.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_deps = line == "[dependencies]";
            continue;
        }
        if !in_deps || line.is_empty() || line.starts_with('#') {
            continue;
        }
        // `name.workspace = true` or `name = ...`: the key runs to the
        // first `.` or `=` (or whitespace before either).
        let key: String = line
            .chars()
            .take_while(|c| !matches!(c, '.' | '=' | ' ' | '\t'))
            .collect();
        if !key.is_empty() {
            deps.insert(key.trim_matches('"').to_string());
        }
    }
    deps
}

/// The transitive intra-workspace dependency closure of every workspace
/// package, **including the package itself**: the name-resolution scope
/// for cross-crate call edges (a call in crate C can only land in a
/// crate C can actually see). Keyed and valued by package name.
#[must_use]
pub fn crate_deps(root: &Path) -> BTreeMap<String, BTreeSet<String>> {
    // Direct dependency edges, restricted to workspace members.
    let mut manifests: Vec<(String, PathBuf)> = Vec::new();
    if let Some(name) = package_name(&root.join("Cargo.toml")) {
        manifests.push((name, root.join("Cargo.toml")));
    }
    if let Ok(entries) = fs::read_dir(root.join("crates")) {
        let mut members: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
        members.sort();
        for member in members.into_iter().filter(|p| p.is_dir()) {
            let manifest = member.join("Cargo.toml");
            if let Some(name) = package_name(&manifest) {
                manifests.push((name, manifest));
            }
        }
    }
    let member_names: BTreeSet<String> = manifests.iter().map(|(n, _)| n.clone()).collect();
    let direct: BTreeMap<String, BTreeSet<String>> = manifests
        .iter()
        .map(|(name, path)| {
            let deps: BTreeSet<String> = manifest_deps(path)
                .into_iter()
                .filter(|d| member_names.contains(d))
                .collect();
            (name.clone(), deps)
        })
        .collect();

    // Transitive closure by fixpoint iteration (the graph is tiny).
    let mut closure = direct.clone();
    loop {
        let mut grew = false;
        for name in &member_names {
            let reach: BTreeSet<String> = closure.get(name).cloned().unwrap_or_default();
            let mut next = reach.clone();
            for dep in &reach {
                if let Some(dd) = closure.get(dep) {
                    next.extend(dd.iter().cloned());
                }
            }
            if next.len() > reach.len() {
                closure.insert(name.clone(), next);
                grew = true;
            }
        }
        if !grew {
            break;
        }
    }
    for name in &member_names {
        closure.entry(name.clone()).or_default().insert(name.clone());
    }
    closure
}

/// Recursively collects `.rs` files under `dir`, skipping `vendor`,
/// `target` and `fixtures` subtrees.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else { return };
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            let skip = path
                .file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| matches!(n, "vendor" | "target" | "fixtures" | ".git"));
            if !skip {
                collect_rs(&path, out);
            }
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(path);
        }
    }
}

/// Discovers every source file of the workspace rooted at `root`,
/// sorted by relative path.
#[must_use]
pub fn discover(root: &Path) -> Vec<SourceFile> {
    let mut dirs: Vec<PathBuf> = Vec::new();
    for top in ["src", "tests", "benches", "examples"] {
        dirs.push(root.join(top));
    }
    if let Ok(entries) = fs::read_dir(root.join("crates")) {
        let mut members: Vec<PathBuf> =
            entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
        members.sort();
        for member in members.into_iter().filter(|p| p.is_dir()) {
            for sub in ["src", "tests", "benches", "examples"] {
                dirs.push(member.join(sub));
            }
            let build = member.join("build.rs");
            if build.is_file() {
                dirs.push(build);
            }
        }
    }
    let build = root.join("build.rs");
    if build.is_file() {
        dirs.push(build);
    }

    let mut files: Vec<PathBuf> = Vec::new();
    for dir in dirs {
        if dir.is_file() {
            files.push(dir);
        } else {
            collect_rs(&dir, &mut files);
        }
    }
    files.sort();

    files
        .into_iter()
        .filter_map(|abs| {
            let rel = abs.strip_prefix(root).ok()?;
            let rel_path = rel
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            let class = classify(&rel_path);
            let crate_name = crate_of(root, &rel_path);
            Some(SourceFile { rel_path, abs_path: abs, class, crate_name })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_covers_the_layout() {
        assert_eq!(classify("crates/sim/src/engine.rs"), FileClass::Lib);
        assert_eq!(classify("crates/sim/tests/prop.rs"), FileClass::Test);
        assert_eq!(classify("tests/determinism.rs"), FileClass::Test);
        assert_eq!(classify("crates/bench/benches/sim_bench.rs"), FileClass::Bench);
        assert_eq!(classify("examples/quickstart.rs"), FileClass::Example);
        assert_eq!(classify("crates/bench/src/bin/fig6.rs"), FileClass::Bin);
        assert_eq!(classify("src/main.rs"), FileClass::Bin);
        assert_eq!(classify("src/lib.rs"), FileClass::Lib);
        assert_eq!(classify("crates/core/build.rs"), FileClass::Build);
    }

    #[test]
    fn crate_roots_are_lib_main_and_bins() {
        let f = |rel: &str, class: FileClass| SourceFile {
            rel_path: rel.to_string(),
            abs_path: PathBuf::from(rel),
            class,
            crate_name: "x".into(),
        };
        assert!(f("crates/sim/src/lib.rs", FileClass::Lib).is_crate_root());
        assert!(f("src/main.rs", FileClass::Bin).is_crate_root());
        assert!(f("crates/bench/src/bin/fig6.rs", FileClass::Bin).is_crate_root());
        assert!(!f("crates/sim/src/engine.rs", FileClass::Lib).is_crate_root());
        assert!(!f("tests/determinism.rs", FileClass::Test).is_crate_root());
    }

    #[test]
    fn crate_deps_closure_on_this_workspace() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let deps = crate_deps(&root);
        let sim = deps.get("cms-sim").expect("cms-sim present");
        // Direct dependency.
        assert!(sim.contains("cms-disk"), "{sim:?}");
        // Transitive: cms-sim -> cms-layout -> cms-bibd (or similar).
        assert!(sim.contains("cms-core"), "{sim:?}");
        // A crate always sees itself.
        assert!(sim.contains("cms-sim"));
        // No reverse edge: cms-core does not depend on the simulator.
        let core = deps.get("cms-core").expect("cms-core present");
        assert!(!core.contains("cms-sim"), "{core:?}");
    }

    #[test]
    fn discovery_on_this_workspace_finds_the_engine() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let files = discover(&root);
        assert!(files.iter().any(|f| f.rel_path == "crates/sim/src/engine.rs"));
        assert!(files.iter().all(|f| !f.rel_path.contains("vendor/")));
        assert!(files.iter().all(|f| !f.rel_path.contains("fixtures/")));
        let engine = files
            .iter()
            .find(|f| f.rel_path == "crates/sim/src/engine.rs")
            .expect("engine present");
        assert_eq!(engine.crate_name, "cms-sim");
        assert_eq!(engine.class, FileClass::Lib);
    }
}
