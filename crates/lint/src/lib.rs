//! `cms-lint` — workspace determinism & hygiene analyzer.
//!
//! A from-scratch static-analysis pass (hand-rolled tokenizer, no `syn`)
//! that enforces the two contracts this workspace lives by:
//!
//! 1. **Bit-identical replay** (DESIGN.md §5): simulation metrics must not
//!    depend on hash iteration order, wall clocks, OS entropy, or thread
//!    interleaving. Rules D001/D002/D003.
//! 2. **No-panic fault paths**: the paper's fault-tolerance claims
//!    (Özden et al., SIGMOD 1996) are void if an injected disk failure
//!    panics the server loop. Rule P001, ratcheted via a checked-in
//!    baseline. Rule H001 keeps every crate `#![forbid(unsafe_code)]`.
//!
//! The library half exposes the tokenizer, rule engine, baseline ratchet
//! and workspace walker; the binary (`src/main.rs`) wires them into a CLI
//! with text and `--json` output.

#![forbid(unsafe_code)]

pub mod baseline;
pub mod graph;
pub mod rules;
pub mod taint;
pub mod tokenizer;
pub mod workspace;

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::path::Path;

use rules::Diagnostic;
use tokenizer::{AllowDirective, Lexed};
use workspace::SourceFile;

/// Result of analyzing a whole workspace.
#[derive(Debug, Default)]
pub struct Report {
    /// Every diagnostic, sorted by (file, line, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// Files analyzed.
    pub files_scanned: usize,
    /// Files that could not be read (path, error) — reported, never fatal.
    pub unreadable: Vec<(String, String)>,
}

impl Report {
    /// Diagnostics whose rule is *not* ratchetable — any of these fails
    /// the run outright.
    #[must_use]
    pub fn hard_failures(&self) -> Vec<&Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| rules::rule(&d.rule).is_none_or(|r| !r.ratchetable))
            .collect()
    }
}

/// Full analysis: token-level report, the workspace call graph, and
/// per-node taint colors for the DOT export.
#[derive(Debug, Default)]
pub struct Analysis {
    /// Token-level **and** interprocedural diagnostics, merged + sorted.
    pub report: Report,
    /// The resolved call graph.
    pub graph: graph::CallGraph,
    /// Taint color per graph node (same indexing as `graph.fns`).
    pub colors: Vec<graph::NodeColor>,
}

/// Runs every rule over every source file of the workspace at `root`.
#[must_use]
pub fn analyze_workspace(root: &Path) -> Report {
    analyze_workspace_full(root).report
}

/// Runs the full pipeline — token rules, call-graph construction, and
/// the D004/P003 reachability rules — over the workspace at `root`.
#[must_use]
pub fn analyze_workspace_full(root: &Path) -> Analysis {
    analyze_files_full(&workspace::discover(root), &workspace::crate_deps(root))
}

/// Runs every rule over an explicit file list (used by fixture tests).
/// Interprocedural rules see only the listed files; `deps` bounds
/// cross-crate call resolution.
#[must_use]
pub fn analyze_files_full(
    files: &[SourceFile],
    deps: &BTreeMap<String, BTreeSet<String>>,
) -> Analysis {
    let mut analysis = Analysis::default();
    let report = &mut analysis.report;

    // Read + lex each file exactly once; the token rules and the graph
    // builder share the stream.
    let mut lexed_files: Vec<(&SourceFile, Lexed)> = Vec::new();
    for file in files {
        match fs::read_to_string(&file.abs_path) {
            Ok(src) => {
                report.files_scanned += 1;
                lexed_files.push((file, tokenizer::tokenize(&src)));
            }
            Err(e) => report.unreadable.push((file.rel_path.clone(), e.to_string())),
        }
    }
    for (file, lexed) in &lexed_files {
        report.diagnostics.extend(rules::analyze_lexed(file, lexed));
    }

    let pairs: Vec<(&SourceFile, &Lexed)> =
        lexed_files.iter().map(|(f, l)| (*f, l)).collect();
    analysis.graph = graph::build(&pairs, deps);
    let allows: BTreeMap<String, Vec<AllowDirective>> = lexed_files
        .iter()
        .map(|(f, l)| (f.rel_path.clone(), l.allows.clone()))
        .collect();
    let taint = taint::analyze(&analysis.graph, &allows);
    report.diagnostics.extend(taint.diagnostics);
    analysis.colors = taint.colors;

    report
        .diagnostics
        .sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    analysis
}

/// Runs every rule over an explicit file list (used by fixture tests).
/// `deps` for the interprocedural rules is each crate seeing every other
/// listed crate — fixture trees don't always carry manifests.
#[must_use]
pub fn analyze_files(files: &[SourceFile]) -> Report {
    let crates: BTreeSet<String> = files.iter().map(|f| f.crate_name.clone()).collect();
    let deps: BTreeMap<String, BTreeSet<String>> =
        crates.iter().map(|c| (c.clone(), crates.clone())).collect();
    analyze_files_full(files, &deps).report
}

/// Escapes a string for inclusion in a JSON document. The output is
/// hand-emitted (the vendored `serde_json` facade is emit-oriented too,
/// and the lint tool must not depend on workspace crates it lints).
#[must_use]
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let mut buf = String::new();
                use std::fmt::Write as _;
                let _ = write!(buf, "\\u{:04x}", c as u32);
                out.push_str(&buf);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        assert_eq!(json_escape("plain"), "plain");
    }
}
