//! `cms-lint` — workspace determinism & hygiene analyzer.
//!
//! A from-scratch static-analysis pass (hand-rolled tokenizer, no `syn`)
//! that enforces the two contracts this workspace lives by:
//!
//! 1. **Bit-identical replay** (DESIGN.md §5): simulation metrics must not
//!    depend on hash iteration order, wall clocks, OS entropy, or thread
//!    interleaving. Rules D001/D002/D003.
//! 2. **No-panic fault paths**: the paper's fault-tolerance claims
//!    (Özden et al., SIGMOD 1996) are void if an injected disk failure
//!    panics the server loop. Rule P001, ratcheted via a checked-in
//!    baseline. Rule H001 keeps every crate `#![forbid(unsafe_code)]`.
//!
//! The library half exposes the tokenizer, rule engine, baseline ratchet
//! and workspace walker; the binary (`src/main.rs`) wires them into a CLI
//! with text and `--json` output.

#![forbid(unsafe_code)]

pub mod baseline;
pub mod rules;
pub mod tokenizer;
pub mod workspace;

use std::fs;
use std::path::Path;

use rules::Diagnostic;
use workspace::SourceFile;

/// Result of analyzing a whole workspace.
#[derive(Debug, Default)]
pub struct Report {
    /// Every diagnostic, sorted by (file, line, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// Files analyzed.
    pub files_scanned: usize,
    /// Files that could not be read (path, error) — reported, never fatal.
    pub unreadable: Vec<(String, String)>,
}

impl Report {
    /// Diagnostics whose rule is *not* ratchetable — any of these fails
    /// the run outright.
    #[must_use]
    pub fn hard_failures(&self) -> Vec<&Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| rules::rule(&d.rule).is_none_or(|r| !r.ratchetable))
            .collect()
    }
}

/// Runs every rule over every source file of the workspace at `root`.
#[must_use]
pub fn analyze_workspace(root: &Path) -> Report {
    analyze_files(&workspace::discover(root))
}

/// Runs every rule over an explicit file list (used by fixture tests).
#[must_use]
pub fn analyze_files(files: &[SourceFile]) -> Report {
    let mut report = Report::default();
    for file in files {
        match fs::read_to_string(&file.abs_path) {
            Ok(src) => {
                report.files_scanned += 1;
                report.diagnostics.extend(rules::analyze_source(file, &src));
            }
            Err(e) => report.unreadable.push((file.rel_path.clone(), e.to_string())),
        }
    }
    report
        .diagnostics
        .sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    report
}

/// Escapes a string for inclusion in a JSON document. The output is
/// hand-emitted (the vendored `serde_json` facade is emit-oriented too,
/// and the lint tool must not depend on workspace crates it lints).
#[must_use]
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let mut buf = String::new();
                use std::fmt::Write as _;
                let _ = write!(buf, "\\u{:04x}", c as u32);
                out.push_str(&buf);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        assert_eq!(json_escape("plain"), "plain");
    }
}
