//! A lightweight Rust tokenizer — just enough lexical structure for the
//! rule engine, with none of `syn`'s weight (the build environment has no
//! registry access, so this is hand-rolled like the vendored facades).
//!
//! The lexer understands exactly the constructs that would otherwise
//! produce false positives in a naive text scan: line and (nested) block
//! comments, string/char/byte/raw-string literals, lifetimes vs char
//! literals, and raw identifiers. Everything else becomes a flat token
//! stream of identifiers, punctuation and literals, each tagged with its
//! 1-based source line.
//!
//! Comments are not tokens, but `// lint: allow(RULE) reason` escape-hatch
//! directives are extracted while skipping them — see [`AllowDirective`].

/// Kinds of tokens the rule engine distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw identifiers, without `r#`).
    Ident,
    /// A single punctuation character (`.`, `:`, `!`, `(`, …).
    Punct,
    /// Numeric literal; the text retains any `.` and suffix, so float
    /// literals are recognizable (`0.0`, `1e-9`, `2.5f64`).
    Num,
    /// String literal of any flavour (escaped, raw, byte, raw-byte).
    Str,
    /// Character or byte-character literal.
    Char,
    /// Lifetime (`'a`), without the leading quote.
    Lifetime,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Tok {
    /// What kind of token this is.
    pub kind: TokKind,
    /// The token text (for [`TokKind::Punct`], a single character; for
    /// string literals, the empty string — rules never inspect string
    /// bodies).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Tok {
    /// Is this an identifier with exactly the given text?
    #[must_use]
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokKind::Ident && self.text == text
    }

    /// Is this a punctuation token with the given character?
    #[must_use]
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.as_bytes().first() == Some(&(c as u8))
    }
}

/// An escape-hatch directive extracted from a comment:
/// `// lint: allow(P001) the reason goes here`.
///
/// A directive suppresses diagnostics of `rule` on its own line and on
/// the line immediately following it. The file-scoped variant
/// `// lint: allow-file(D005) reason` suppresses the rule in the whole
/// file — for sources whose entire purpose is the exempted construct
/// (e.g. the allocation gauge's atomics). The reason is **mandatory**;
/// a directive without one does not suppress anything and is itself
/// reported (rule `L000`).
#[derive(Debug, Clone)]
pub struct AllowDirective {
    /// 1-based line the directive comment is on.
    pub line: u32,
    /// The rule id inside `allow(...)`, e.g. `P001`.
    pub rule: String,
    /// Whether any non-whitespace reason text followed the `allow(...)`.
    pub has_reason: bool,
    /// `true` for the `allow-file(...)` variant: suppresses everywhere
    /// in the file, not just on the adjacent line.
    pub file_scope: bool,
}

/// The result of lexing one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// The token stream, in source order.
    pub tokens: Vec<Tok>,
    /// All `lint: allow(...)` directives found in comments.
    pub allows: Vec<AllowDirective>,
    /// Lines carrying a `// lint: hot` marker. The function item that
    /// starts on (or immediately after) such a line is a declared
    /// hot-path function; rule P002 holds its body to the
    /// zero-allocation contract (DESIGN.md §7).
    pub hots: Vec<u32>,
}

/// Tokenizes `src`. Never fails: unterminated constructs simply consume
/// the rest of the input (the compiler, not the linter, owns syntax
/// errors).
#[must_use]
pub fn tokenize(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;

    macro_rules! bump_lines {
        ($slice:expr) => {
            line += $slice.iter().filter(|&&c| c == b'\n').count() as u32
        };
    }

    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let end = memchr_newline(b, i);
                scan_allow(&src[i..end], line, &mut out.allows);
                scan_hot(&src[i..end], line, &mut out.hots);
                i = end;
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let end = block_comment_end(b, i);
                bump_lines!(&b[i..end]);
                i = end;
            }
            b'"' => {
                let end = string_end(b, i + 1);
                out.tokens.push(Tok { kind: TokKind::Str, text: String::new(), line });
                bump_lines!(&b[i..end]);
                i = end;
            }
            b'\'' => {
                // Lifetime ('a not followed by ') vs char literal.
                let is_lifetime = i + 1 < b.len()
                    && (b[i + 1].is_ascii_alphabetic() || b[i + 1] == b'_')
                    && !matches!(b.get(i + 2), Some(b'\''));
                if is_lifetime {
                    let end = ident_end(b, i + 1);
                    out.tokens.push(Tok {
                        kind: TokKind::Lifetime,
                        text: src[i + 1..end].to_string(),
                        line,
                    });
                    i = end;
                } else {
                    let end = char_literal_end(b, i + 1);
                    out.tokens.push(Tok { kind: TokKind::Char, text: String::new(), line });
                    bump_lines!(&b[i..end]);
                    i = end;
                }
            }
            b'b' if b.get(i + 1) == Some(&b'\'') => {
                // Byte-character literal b'x' / b'\'' — a Char, not a Str.
                let end = char_literal_end(b, i + 2);
                out.tokens.push(Tok { kind: TokKind::Char, text: String::new(), line });
                bump_lines!(&b[i..end]);
                i = end;
            }
            b'r' | b'b' if raw_or_byte_string_len(b, i).is_some() => {
                // Unwrap-free by construction: the guard just computed it.
                let Some(end) = raw_or_byte_string_len(b, i) else { continue };
                out.tokens.push(Tok { kind: TokKind::Str, text: String::new(), line });
                bump_lines!(&b[i..end]);
                i = end;
            }
            b'r' if i + 1 < b.len() && b[i + 1] == b'#' && is_ident_start(*b.get(i + 2).unwrap_or(&b' ')) => {
                // Raw identifier r#ident: token text is the bare ident.
                let end = ident_end(b, i + 2);
                out.tokens.push(Tok {
                    kind: TokKind::Ident,
                    text: src[i + 2..end].to_string(),
                    line,
                });
                i = end;
            }
            c if is_ident_start(c) => {
                let end = ident_end(b, i);
                out.tokens.push(Tok {
                    kind: TokKind::Ident,
                    text: src[i..end].to_string(),
                    line,
                });
                i = end;
            }
            c if c.is_ascii_digit() => {
                let end = number_end(b, i);
                out.tokens.push(Tok {
                    kind: TokKind::Num,
                    text: src[i..end].to_string(),
                    line,
                });
                i = end;
            }
            _ => {
                out.tokens.push(Tok {
                    kind: TokKind::Punct,
                    text: src[i..i + 1].to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_'
}

fn is_ident_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

fn ident_end(b: &[u8], mut i: usize) -> usize {
    while i < b.len() && is_ident_continue(b[i]) {
        i += 1;
    }
    i
}

/// Number literal: digits, `_`, alphanumeric suffix characters, and at
/// most one `.` — and only when a digit follows it, so ranges (`1..10`)
/// and method calls on integers (`1.max(x)`) keep their punctuation.
fn number_end(b: &[u8], mut i: usize) -> usize {
    let mut seen_dot = false;
    while i < b.len() {
        let c = b[i];
        if c.is_ascii_alphanumeric() || c == b'_' {
            i += 1;
        } else if c == b'.'
            && !seen_dot
            && matches!(b.get(i + 1), Some(d) if d.is_ascii_digit())
        {
            seen_dot = true;
            i += 1;
        } else if (c == b'+' || c == b'-')
            && matches!(b.get(i.wrapping_sub(1)), Some(b'e' | b'E'))
            && matches!(b.get(i + 1), Some(d) if d.is_ascii_digit())
        {
            // Exponent sign: 1e-9.
            i += 1;
        } else {
            break;
        }
    }
    i
}

fn memchr_newline(b: &[u8], mut i: usize) -> usize {
    while i < b.len() && b[i] != b'\n' {
        i += 1;
    }
    i
}

/// End index (exclusive) of a nested block comment starting at `/*`.
fn block_comment_end(b: &[u8], mut i: usize) -> usize {
    let mut depth = 0u32;
    while i < b.len() {
        if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
            depth += 1;
            i += 2;
        } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
            depth -= 1;
            i += 2;
            if depth == 0 {
                return i;
            }
        } else {
            i += 1;
        }
    }
    b.len()
}

/// End index (exclusive) of an escaped string whose body starts at `i`.
fn string_end(b: &[u8], mut i: usize) -> usize {
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    b.len()
}

/// End index (exclusive) of a char/byte-char literal whose body starts at
/// `i` (after the opening quote).
fn char_literal_end(b: &[u8], mut i: usize) -> usize {
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'\'' => return i + 1,
            _ => i += 1,
        }
    }
    b.len()
}

/// If position `i` starts a raw / byte / raw-byte string literal
/// (`r"`, `r#"`, `b"`, `br#"`, `b'`-as-byte-char is handled elsewhere),
/// returns its end index.
fn raw_or_byte_string_len(b: &[u8], i: usize) -> Option<usize> {
    let (mut j, raw) = match (b.get(i), b.get(i + 1)) {
        (Some(b'r'), Some(b'"' | b'#')) => (i + 1, true),
        (Some(b'b'), Some(b'"')) => (i + 1, false),
        (Some(b'b'), Some(b'r')) if matches!(b.get(i + 2), Some(b'"' | b'#')) => (i + 2, true),
        _ => return None,
    };
    if raw {
        let mut hashes = 0usize;
        while b.get(j) == Some(&b'#') {
            hashes += 1;
            j += 1;
        }
        if b.get(j) != Some(&b'"') {
            return None; // r#ident, not a raw string
        }
        j += 1;
        while j < b.len() {
            if b[j] == b'"' && b[j + 1..].len() >= hashes
                && b[j + 1..j + 1 + hashes].iter().all(|&c| c == b'#')
            {
                return Some(j + 1 + hashes);
            }
            j += 1;
        }
        Some(b.len())
    } else {
        Some(string_end(b, j + 1))
    }
}

/// Extracts `lint: allow(RULE) reason` or `lint: allow-file(RULE) reason`
/// from one line comment.
fn scan_allow(comment: &str, line: u32, out: &mut Vec<AllowDirective>) {
    let (rest, file_scope) = if let Some(pos) = comment.find("lint: allow-file(") {
        (&comment[pos + "lint: allow-file(".len()..], true)
    } else if let Some(pos) = comment.find("lint: allow(") {
        (&comment[pos + "lint: allow(".len()..], false)
    } else {
        return;
    };
    let Some(close) = rest.find(')') else { return };
    let rule = rest[..close].trim().to_string();
    if rule.is_empty() {
        return;
    }
    let reason = rest[close + 1..].trim();
    out.push(AllowDirective { line, rule, has_reason: !reason.is_empty(), file_scope });
}

/// Detects a `lint: hot` marker in one line comment. The marker must be
/// the whole directive (nothing but whitespace after it), so prose that
/// merely mentions the phrase does not mark a function.
fn scan_hot(comment: &str, line: u32, out: &mut Vec<u32>) {
    let Some(pos) = comment.find("lint: hot") else { return };
    if comment[pos + "lint: hot".len()..].trim().is_empty() {
        out.push(line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        tokenize(src)
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.clone())
            .collect()
    }

    #[test]
    fn comments_and_strings_hide_identifiers() {
        let src = r##"
// HashMap in a comment
/* HashMap in /* a nested */ block */
let s = "HashMap in a string";
let r = r#"HashMap raw "quoted" body"#;
let b = b"HashMap bytes";
let real = HashMap::new();
"##;
        assert_eq!(idents(src).iter().filter(|t| *t == "HashMap").count(), 1);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lexed = tokenize("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let chars = lexed.tokens.iter().filter(|t| t.kind == TokKind::Char).count();
        assert_eq!(chars, 2);
    }

    #[test]
    fn float_vs_range_numbers() {
        let lexed = tokenize("let a = 0.5; for i in 1..10 { a.max(2.0e-3); }");
        let nums: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Num)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(nums, vec!["0.5", "1", "10", "2.0e-3"]);
    }

    #[test]
    fn lines_are_tracked_through_multiline_constructs() {
        let src = "let a = 1;\n/* two\nlines */\nlet b = \"x\ny\";\nfinal_ident";
        let lexed = tokenize(src);
        let last = lexed.tokens.last().expect("tokens");
        assert!(last.is_ident("final_ident"));
        assert_eq!(last.line, 6);
    }

    #[test]
    fn allow_directives_with_and_without_reason() {
        let src = "// lint: allow(P001) the panic is a worker-thread join\nx.unwrap();\n// lint: allow(D001)\ny.unwrap();";
        let lexed = tokenize(src);
        assert_eq!(lexed.allows.len(), 2);
        assert_eq!(lexed.allows[0].rule, "P001");
        assert!(lexed.allows[0].has_reason);
        assert_eq!(lexed.allows[0].line, 1);
        assert_eq!(lexed.allows[1].rule, "D001");
        assert!(!lexed.allows[1].has_reason);
    }

    #[test]
    fn raw_identifiers_lex_as_plain_idents() {
        assert_eq!(idents("let r#type = 1;"), vec!["let", "type"]);
    }

    #[test]
    fn multi_hash_raw_strings_hide_decoy_terminators() {
        // The `"#` inside the body must not close an `r##` string, and
        // the identifier after the real terminator must still be lexed.
        let src = r####"let s = r##"decoy "# HashMap "##; after"####;
        assert_eq!(idents(src), vec!["let", "s", "after"]);
        // Empty raw string, then an identifier.
        assert_eq!(idents(r###"let e = r#""#; tail"###), vec!["let", "e", "tail"]);
        // A `"` followed by too few hashes does not terminate.
        let src = r####"let s = r###"a"## b"###; done"####;
        assert_eq!(idents(src), vec!["let", "s", "done"]);
    }

    #[test]
    fn byte_and_raw_byte_strings_lex_as_strings() {
        let src = r###"let a = b"esc \" HashMap"; let c = br#"raw " HashMap"#; real"###;
        assert_eq!(idents(src), vec!["let", "a", "let", "c", "real"]);
        let strs = tokenize(src).tokens.iter().filter(|t| t.kind == TokKind::Str).count();
        assert_eq!(strs, 2);
    }

    #[test]
    fn unterminated_constructs_consume_the_rest_without_panicking() {
        for src in [
            "let s = r#\"never closed",
            "let s = \"never closed",
            "let a = 1; /* never /* closed",
            "let c = 'x",
        ] {
            let lexed = tokenize(src);
            // Whatever tokens came before the construct are intact.
            assert!(lexed.tokens.iter().any(|t| t.is_ident("let")), "{src}");
        }
    }

    #[test]
    fn nested_block_comments_require_balanced_closers() {
        // One `*/` closes only the inner comment; HashMap is still hidden.
        let src = "/* outer /* inner */ HashMap */ real";
        assert_eq!(idents(src), vec!["real"]);
        // Self-overlapping open `/*/` does not close the comment.
        assert_eq!(idents("/*/ still a comment */ tail"), vec!["tail"]);
        // Minimal comment.
        assert_eq!(idents("/**/x"), vec!["x"]);
    }

    #[test]
    fn lifetime_tick_corner_cases() {
        // '_' the char vs '_ the elided lifetime.
        let lexed = tokenize("let c = '_'; fn f(x: &'_ str) {}");
        assert_eq!(lexed.tokens.iter().filter(|t| t.kind == TokKind::Char).count(), 1);
        let lt: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lt, vec!["_"]);
        // Loop labels are lifetimes; char ranges stay chars.
        let lexed = tokenize("'outer: for c in 'a'..='z' { break 'outer; }");
        let lt: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lt, vec!["outer", "outer"]);
        assert_eq!(lexed.tokens.iter().filter(|t| t.kind == TokKind::Char).count(), 2);
        // Escaped-quote and byte chars.
        let lexed = tokenize(r"let q = '\''; let b = b'\''; let n = b'x';");
        let chars = lexed.tokens.iter().filter(|t| t.kind == TokKind::Char).count();
        assert_eq!(chars, 3);
        assert!(lexed.tokens.iter().all(|t| t.kind != TokKind::Lifetime));
    }

    #[test]
    fn raw_identifier_method_calls_are_idents_not_raw_strings() {
        assert_eq!(idents("x.r#try()"), vec!["x", "try"]);
    }

    #[test]
    fn line_counting_through_raw_strings_and_crlf() {
        let src = "let a = r#\"two\nlines\"#;\r\nlast";
        let lexed = tokenize(src);
        let last = lexed.tokens.last().expect("tokens");
        assert!(last.is_ident("last"));
        assert_eq!(last.line, 3);
    }

    #[test]
    fn file_scoped_allow_directives_are_recognized() {
        let src = "// lint: allow-file(D005) the gauge is read only after workers join\nfn f() {}\n// lint: allow-file(D005)\n";
        let lexed = tokenize(src);
        assert_eq!(lexed.allows.len(), 2);
        assert!(lexed.allows[0].file_scope);
        assert!(lexed.allows[0].has_reason);
        assert_eq!(lexed.allows[0].rule, "D005");
        assert!(lexed.allows[1].file_scope);
        assert!(!lexed.allows[1].has_reason);
        // The line-scoped form is unchanged.
        let lexed = tokenize("// lint: allow(P001) reason\n");
        assert!(!lexed.allows[0].file_scope);
    }

    #[test]
    fn hot_markers_are_extracted_only_when_bare() {
        let src = "// lint: hot\nfn f() {}\n// this mentions lint: hot paths in prose\nfn g() {}\n// lint: hot   \nfn h() {}";
        let lexed = tokenize(src);
        assert_eq!(lexed.hots, vec![1, 5]);
    }
}
