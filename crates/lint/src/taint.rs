//! Reachability rules over the workspace call graph.
//!
//! * **D004** — determinism taint: a function in a
//!   [`DETERMINISTIC_CRATES`] lib that transitively reaches a D002
//!   wall-clock/entropy sink through any chain of workspace functions.
//!   Functions containing the sink directly are D002's business and are
//!   not re-reported. A sink whose D002 diagnostic is suppressed by a
//!   reasoned `lint: allow(D002)` is vetted and does not seed taint, and
//!   a `lint: allow(D004)` on a function declares it a determinism
//!   boundary: the taint stops there instead of spreading to every
//!   caller.
//! * **P003** — hot-path allocation taint: an allocation inside a
//!   function transitively reachable from a `// lint: hot` function (the
//!   interprocedural closure of P002). Hot functions' own allocations
//!   are P002's business. Ratcheted via the baseline like P002/P001.
//!
//! Both BFS passes are deterministic: seeds in ascending node order,
//! sorted edge lists, FIFO expansion — so reported chains (always a
//! shortest path) are stable across runs.

use std::collections::{BTreeMap, VecDeque};

use crate::graph::{CallGraph, NodeColor, SinkHit};
use crate::rules::{allowed, Diagnostic, DETERMINISTIC_CRATES};
use crate::tokenizer::AllowDirective;

/// Diagnostics plus per-node taint colors for the DOT export.
#[derive(Debug, Default)]
pub struct TaintOutcome {
    /// D004 / P003 findings, in node order.
    pub diagnostics: Vec<Diagnostic>,
    /// One color per graph node (same indexing as `graph.fns`).
    pub colors: Vec<NodeColor>,
}

const EMPTY_ALLOWS: &[AllowDirective] = &[];

fn allows_for<'a>(
    allows: &'a BTreeMap<String, Vec<AllowDirective>>,
    file: &str,
) -> &'a [AllowDirective] {
    allows.get(file).map_or(EMPTY_ALLOWS, Vec::as_slice)
}

/// Runs the reachability rules. `allows` maps workspace-relative paths to
/// the `lint: allow` directives lexed from that file.
#[must_use]
pub fn analyze(
    graph: &CallGraph,
    allows: &BTreeMap<String, Vec<AllowDirective>>,
) -> TaintOutcome {
    let n = graph.fns.len();
    let mut out = TaintOutcome { diagnostics: Vec::new(), colors: vec![NodeColor::Plain; n] };

    // Reverse adjacency (callee -> callers), callers ascending.
    let mut rev: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (caller, callees) in graph.edges.iter().enumerate() {
        for &callee in callees {
            rev[callee].push(caller);
        }
    }

    // ---- D004: reverse BFS from unsuppressed clock sinks. ----
    // `toward_sink[f]` = the callee one hop closer to the nearest sink.
    let mut toward_sink: Vec<Option<usize>> = vec![None; n];
    let mut seeded = vec![false; n];
    let mut queue: VecDeque<usize> = VecDeque::new();
    for (id, f) in graph.fns.iter().enumerate() {
        let live: Vec<&SinkHit> = f
            .clock_sinks
            .iter()
            .filter(|s| !allowed(allows_for(allows, &f.file), "D002", s.line))
            .collect();
        if !live.is_empty() {
            seeded[id] = true;
            queue.push_back(id);
        }
    }
    let mut clock_reached = seeded.clone();
    while let Some(node) = queue.pop_front() {
        // An allowed fn is a vetted determinism boundary: taint stops.
        let f = &graph.fns[node];
        if !seeded[node] && allowed(allows_for(allows, &f.file), "D004", f.line) {
            continue;
        }
        for &caller in &rev[node] {
            if !clock_reached[caller] {
                clock_reached[caller] = true;
                toward_sink[caller] = Some(node);
                queue.push_back(caller);
            }
        }
    }
    for (id, f) in graph.fns.iter().enumerate() {
        if seeded[id] || !clock_reached[id] {
            continue;
        }
        if !(f.is_lib && DETERMINISTIC_CRATES.contains(&f.crate_name.as_str())) {
            continue;
        }
        if allowed(allows_for(allows, &f.file), "D004", f.line) {
            continue;
        }
        // Walk the chain down to the sink-bearing function.
        let mut chain: Vec<String> = vec![f.display()];
        let mut cur = id;
        while let Some(next) = toward_sink[cur] {
            chain.push(graph.fns[next].display());
            cur = next;
        }
        let sink_fn = &graph.fns[cur];
        let sink = sink_fn
            .clock_sinks
            .iter()
            .find(|s| !allowed(allows_for(allows, &sink_fn.file), "D002", s.line));
        let (what, where_) = sink.map_or_else(
            || ("wall clock".to_string(), sink_fn.file.clone()),
            |s| (s.what.clone(), format!("{}:{}", sink_fn.file, s.line)),
        );
        out.diagnostics.push(Diagnostic {
            file: f.file.clone(),
            line: f.line,
            rule: "D004".to_string(),
            message: format!(
                "fn `{}` in deterministic crate {} transitively reaches wall-clock/entropy sink `{what}` ({where_})",
                f.name, f.crate_name
            ),
            chain,
        });
    }

    // ---- P003: forward BFS from `// lint: hot` roots. ----
    // `toward_root[f]` = the caller one hop closer to the nearest hot fn.
    let mut toward_root: Vec<Option<usize>> = vec![None; n];
    let mut hot_reached = vec![false; n];
    let mut queue: VecDeque<usize> = VecDeque::new();
    for (id, f) in graph.fns.iter().enumerate() {
        if f.is_hot {
            hot_reached[id] = true;
            queue.push_back(id);
        }
    }
    while let Some(node) = queue.pop_front() {
        for &callee in &graph.edges[node] {
            if !hot_reached[callee] {
                hot_reached[callee] = true;
                toward_root[callee] = Some(node);
                queue.push_back(callee);
            }
        }
    }
    for (id, f) in graph.fns.iter().enumerate() {
        if f.is_hot || !hot_reached[id] || !f.is_lib || f.alloc_sinks.is_empty() {
            continue;
        }
        // Chain from the hot root down to this function.
        let mut chain: Vec<String> = vec![f.display()];
        let mut cur = id;
        while let Some(prev) = toward_root[cur] {
            chain.push(graph.fns[prev].display());
            cur = prev;
        }
        chain.reverse();
        let root = &graph.fns[cur];
        for sink in &f.alloc_sinks {
            if allowed(allows_for(allows, &f.file), "P003", sink.line)
                || allowed(allows_for(allows, &f.file), "P002", sink.line)
            {
                continue;
            }
            out.diagnostics.push(Diagnostic {
                file: f.file.clone(),
                line: sink.line,
                rule: "P003".to_string(),
                message: format!(
                    "`{}` in fn `{}`, reachable from hot fn `{}`; the zero-alloc round contract extends to callees",
                    sink.what, f.name, root.name
                ),
                chain: chain.clone(),
            });
        }
    }

    // ---- Node colors for the DOT export. ----
    for id in 0..n {
        let f = &graph.fns[id];
        out.colors[id] = if seeded[id] {
            NodeColor::ClockSink
        } else if clock_reached[id] {
            NodeColor::ClockTainted
        } else if f.is_hot {
            NodeColor::Hot
        } else if hot_reached[id] && !f.alloc_sinks.is_empty() {
            NodeColor::HotAlloc
        } else if hot_reached[id] {
            NodeColor::HotReach
        } else {
            NodeColor::Plain
        };
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::build;
    use crate::tokenizer::tokenize;
    use crate::workspace::{FileClass, SourceFile};
    use std::collections::BTreeSet;
    use std::path::PathBuf;

    fn file(rel: &str, class: FileClass, krate: &str) -> SourceFile {
        SourceFile {
            rel_path: rel.to_string(),
            abs_path: PathBuf::from(rel),
            class,
            crate_name: krate.to_string(),
        }
    }

    fn deps_of(pairs: &[(&str, &[&str])]) -> BTreeMap<String, BTreeSet<String>> {
        pairs
            .iter()
            .map(|(c, ds)| {
                let mut set: BTreeSet<String> = ds.iter().map(|s| (*s).to_string()).collect();
                set.insert((*c).to_string());
                ((*c).to_string(), set)
            })
            .collect()
    }

    /// Builds graph+taint for (path, crate, source) lib files.
    fn run(
        files: &[(&str, &str, &str)],
        deps: &[(&str, &[&str])],
    ) -> (Vec<Diagnostic>, Vec<NodeColor>) {
        let srcs: Vec<(SourceFile, crate::tokenizer::Lexed)> = files
            .iter()
            .map(|(rel, krate, src)| (file(rel, FileClass::Lib, krate), tokenize(src)))
            .collect();
        let pairs: Vec<(&SourceFile, &crate::tokenizer::Lexed)> =
            srcs.iter().map(|(f, l)| (f, l)).collect();
        let g = build(&pairs, &deps_of(deps));
        let mut allows: BTreeMap<String, Vec<AllowDirective>> = BTreeMap::new();
        for (f, l) in &srcs {
            allows.insert(f.rel_path.clone(), l.allows.clone());
        }
        let outcome = analyze(&g, &allows);
        (outcome.diagnostics, outcome.colors)
    }

    #[test]
    fn d004_reports_a_two_hop_cross_crate_chain() {
        let (diags, colors) = run(
            &[
                (
                    "crates/sim/src/engine.rs",
                    "cms-sim",
                    "pub fn tainted_entry() { wrap_stamp(); }\n",
                ),
                (
                    "crates/bench/src/clock.rs",
                    "cms-bench",
                    "pub fn wrap_stamp() { stamp_now(); }\npub fn stamp_now() { let t = Instant::now(); }\n",
                ),
            ],
            &[("cms-sim", &["cms-bench"]), ("cms-bench", &[])],
        );
        assert_eq!(diags.len(), 1, "{diags:?}");
        let d = &diags[0];
        assert_eq!(d.rule, "D004");
        assert_eq!(d.file, "crates/sim/src/engine.rs");
        assert_eq!(
            d.chain,
            vec![
                "cms-sim::engine::tainted_entry",
                "cms-bench::clock::wrap_stamp",
                "cms-bench::clock::stamp_now",
            ]
        );
        assert!(d.message.contains("Instant::now"), "{}", d.message);
        assert!(d.message.contains("crates/bench/src/clock.rs:2"), "{}", d.message);
        // Colors: sink red, intermediate + entry tainted.
        assert_eq!(colors[0], NodeColor::ClockTainted); // tainted_entry
        assert_eq!(colors[1], NodeColor::ClockTainted); // wrap_stamp
        assert_eq!(colors[2], NodeColor::ClockSink); // stamp_now
    }

    #[test]
    fn d004_skips_direct_sinks_and_nondeterministic_crates() {
        let (diags, _) = run(
            &[
                (
                    "crates/bench/src/clock.rs",
                    "cms-bench",
                    "pub fn stamp_now() { let t = Instant::now(); }\npub fn bench_caller() { stamp_now(); }\n",
                ),
            ],
            &[("cms-bench", &[])],
        );
        // stamp_now holds the sink directly (D002 territory, and cms-bench
        // is the timing crate anyway); bench_caller is not a deterministic
        // crate. Nothing to report.
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn d004_allow_is_a_boundary_not_just_a_mute() {
        let (diags, _) = run(
            &[
                (
                    "crates/sim/src/engine.rs",
                    "cms-sim",
                    "pub fn caller() { vetted(); }\n// lint: allow(D004) vetted telemetry wrapper, time never reaches metrics\npub fn vetted() { stamp(); }\npub fn stamp() { let t = Instant::now(); }\n",
                ),
            ],
            &[("cms-sim", &[])],
        );
        // `vetted` is suppressed AND stops propagation to `caller`.
        assert!(
            diags.iter().all(|d| d.rule != "D004"),
            "allow(D004) should cut the taint: {diags:?}"
        );
    }

    #[test]
    fn d004_does_not_seed_from_an_allowed_d002_sink() {
        let (diags, _) = run(
            &[
                (
                    "crates/sim/src/engine.rs",
                    "cms-sim",
                    "pub fn caller() { logstamp(); }\npub fn logstamp() {\n    // lint: allow(D002) log timestamp only, never fed into simulation state\n    let t = Instant::now();\n}\n",
                ),
            ],
            &[("cms-sim", &[])],
        );
        assert!(diags.iter().all(|d| d.rule != "D004"), "{diags:?}");
    }

    #[test]
    fn p003_reports_alloc_in_helper_reachable_from_hot() {
        let (diags, colors) = run(
            &[(
                "crates/sim/src/engine.rs",
                "cms-sim",
                "// lint: hot\npub fn hot_entry() { helper_fill(); }\npub fn helper_fill() { let v = Vec::new(); }\n",
            )],
            &[("cms-sim", &[])],
        );
        assert_eq!(diags.len(), 1, "{diags:?}");
        let d = &diags[0];
        assert_eq!(d.rule, "P003");
        assert_eq!(d.line, 3);
        assert_eq!(
            d.chain,
            vec!["cms-sim::engine::hot_entry", "cms-sim::engine::helper_fill"]
        );
        assert_eq!(colors[0], NodeColor::Hot);
        assert_eq!(colors[1], NodeColor::HotAlloc);
    }

    #[test]
    fn p003_leaves_direct_hot_allocations_to_p002() {
        let (diags, _) = run(
            &[(
                "crates/sim/src/engine.rs",
                "cms-sim",
                "// lint: hot\npub fn hot_entry() { let v = Vec::new(); }\n",
            )],
            &[("cms-sim", &[])],
        );
        assert!(diags.iter().all(|d| d.rule != "P003"), "{diags:?}");
    }

    #[test]
    fn p003_respects_allow_at_the_alloc_site() {
        let (diags, _) = run(
            &[(
                "crates/sim/src/engine.rs",
                "cms-sim",
                "// lint: hot\npub fn hot_entry() { helper(); }\npub fn helper() {\n    // lint: allow(P003) one-time setup, amortized before the round loop\n    let v = Vec::new();\n}\n",
            )],
            &[("cms-sim", &[])],
        );
        assert!(diags.iter().all(|d| d.rule != "P003"), "{diags:?}");
    }
}
