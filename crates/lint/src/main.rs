//! `cms-lint` CLI.
//!
//! ```text
//! cargo run -p cms-lint                    # lint the workspace, text output
//! cargo run -p cms-lint -- --json          # machine-readable report
//! cargo run -p cms-lint -- --update-baseline   # rewrite the ratchet
//! cargo run -p cms-lint -- --graph dot     # taint-colored call graph (DOT)
//! cargo run -p cms-lint -- --root <dir> --baseline <file>
//! ```
//!
//! Exit codes: `0` clean (carried baseline debt allowed), `1` violations
//! (hard-rule hit, ratchet regression, or stale baseline), `2` usage or
//! I/O error.

#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use cms_lint::baseline::{self, Verdict};
use cms_lint::rules::RULES;
use cms_lint::{analyze_workspace_full, graph, json_escape, Report};

struct Options {
    root: PathBuf,
    baseline_path: PathBuf,
    json: bool,
    update_baseline: bool,
    graph_dot: bool,
}

fn usage() -> String {
    let mut s = String::from(
        "cms-lint: workspace determinism & hygiene analyzer\n\n\
         USAGE: cms-lint [--root DIR] [--baseline FILE] [--json] [--update-baseline] [--graph dot]\n\n\
         Rules:\n",
    );
    for r in RULES {
        let _ = writeln!(
            s,
            "  {} {:10} {}",
            r.id,
            if r.ratchetable { "(ratchet)" } else { "(hard)" },
            r.summary
        );
    }
    s
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut root: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut json = false;
    let mut update_baseline = false;
    let mut graph_dot = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--update-baseline" => update_baseline = true,
            "--graph" => {
                let fmt = it.next().ok_or("--graph requires a format argument (dot)")?;
                if fmt != "dot" {
                    return Err(format!("unsupported --graph format `{fmt}` (only `dot`)"));
                }
                graph_dot = true;
            }
            "--root" => {
                root = Some(PathBuf::from(
                    it.next().ok_or("--root requires a directory argument")?,
                ));
            }
            "--baseline" => {
                baseline_path = Some(PathBuf::from(
                    it.next().ok_or("--baseline requires a file argument")?,
                ));
            }
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown argument `{other}`\n\n{}", usage())),
        }
    }
    let root = match root {
        Some(r) => r,
        // Default to the workspace root: two levels above this crate's
        // manifest when running via `cargo run -p cms-lint`, else cwd.
        None => workspace_root_guess(),
    };
    let baseline_path = baseline_path.unwrap_or_else(|| root.join("lint-baseline.txt"));
    Ok(Options { root, baseline_path, json, update_baseline, graph_dot })
}

/// `CARGO_MANIFEST_DIR/../..` if it looks like the workspace (has a
/// `crates/` dir), else the current directory.
fn workspace_root_guess() -> PathBuf {
    let compiled = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    if compiled.join("crates").is_dir() {
        return compiled;
    }
    PathBuf::from(".")
}

fn render_json(report: &Report, verdict: &Verdict, ok: bool) -> String {
    let mut s = String::from("{\n  \"diagnostics\": [\n");
    for (i, d) in report.diagnostics.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"",
            json_escape(&d.file),
            d.line,
            json_escape(&d.rule),
            json_escape(&d.message)
        );
        // Interprocedural rules carry their call-chain provenance: the
        // qualified functions from taint source to sink, in order.
        if !d.chain.is_empty() {
            s.push_str(", \"chain\": [");
            for (j, link) in d.chain.iter().enumerate() {
                if j > 0 {
                    s.push_str(", ");
                }
                let _ = write!(s, "\"{}\"", json_escape(link));
            }
            s.push(']');
        }
        s.push('}');
        s.push_str(if i + 1 < report.diagnostics.len() { ",\n" } else { "\n" });
    }
    let _ = write!(
        s,
        "  ],\n  \"files_scanned\": {},\n  \"carried\": {},\n  \"regressions\": {},\n  \"stale\": {},\n  \"ok\": {}\n}}\n",
        report.files_scanned,
        verdict.carried,
        verdict.regressions.len(),
        verdict.stale.len(),
        ok
    );
    s
}

fn run() -> Result<ExitCode, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = parse_args(&args)?;

    if !opts.root.join("Cargo.toml").is_file() {
        return Err(format!("no Cargo.toml under --root {}", opts.root.display()));
    }

    let analysis = analyze_workspace_full(&opts.root);
    if opts.graph_dot {
        print!("{}", graph::to_dot(&analysis.graph, &analysis.colors));
        return Ok(ExitCode::SUCCESS);
    }
    let report = analysis.report;
    for (path, err) in &report.unreadable {
        eprintln!("cms-lint: warning: could not read {path}: {err}");
    }

    let actual = baseline::bucket(&report.diagnostics);

    if opts.update_baseline {
        let text = baseline::render(&actual);
        fs::write(&opts.baseline_path, &text)
            .map_err(|e| format!("writing {}: {e}", opts.baseline_path.display()))?;
        let total: usize = actual.values().sum();
        println!(
            "cms-lint: baseline updated: {} ratcheted violations across {} buckets -> {}",
            total,
            actual.len(),
            opts.baseline_path.display()
        );
        // Hard rules still gate even while updating the ratchet.
        let hard = report.hard_failures();
        if hard.is_empty() {
            return Ok(ExitCode::SUCCESS);
        }
        for d in &hard {
            println!("{}", d.render());
        }
        println!("cms-lint: {} hard violation(s) — these cannot be baselined", hard.len());
        return Ok(ExitCode::FAILURE);
    }

    let baselined = match fs::read_to_string(&opts.baseline_path) {
        Ok(text) => baseline::parse(&text)?,
        Err(_) => baseline::Counts::new(),
    };
    let verdict = baseline::compare(&actual, &baselined);
    let hard = report.hard_failures();
    let ok = hard.is_empty() && verdict.ok();

    if opts.json {
        print!("{}", render_json(&report, &verdict, ok));
    } else {
        for d in &hard {
            println!("{}", d.render());
        }
        for (rule_id, file, a, b) in &verdict.regressions {
            println!("{file}:0:{rule_id} ratchet regression: {a} violation(s), baseline allows {b}");
            // Show the offending occurrences for the grown bucket.
            for d in report
                .diagnostics
                .iter()
                .filter(|d| &d.rule == rule_id && &d.file == file)
            {
                println!("  {}", d.render());
            }
        }
        for (rule_id, file, a, b) in &verdict.stale {
            println!(
                "{file}:0:{rule_id} stale baseline: {a} violation(s) but baseline says {b}; \
                 run `cargo run -p cms-lint -- --update-baseline` to lock in the improvement"
            );
        }
        let hard_summary = RULES
            .iter()
            .filter(|r| !r.ratchetable)
            .map(|r| {
                let n = report.diagnostics.iter().filter(|d| d.rule == r.id).count();
                format!("{}={n}", r.id)
            })
            .collect::<Vec<_>>()
            .join(" ");
        println!(
            "cms-lint: {} files, {} carried baseline violation(s), {hard_summary}: {}",
            report.files_scanned,
            verdict.carried,
            if ok { "PASS" } else { "FAIL" }
        );
    }

    Ok(if ok { ExitCode::SUCCESS } else { ExitCode::FAILURE })
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
    }
}
