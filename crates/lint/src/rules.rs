//! The rule catalogue and per-file analysis pass.
//!
//! Every rule is project-specific: it encodes a clause of the workspace's
//! determinism / no-panic contract (DESIGN.md §5) rather than generic
//! style. The catalogue:
//!
//! | id   | meaning                                                        | scope                              | ratchets? |
//! |------|----------------------------------------------------------------|------------------------------------|-----------|
//! | D001 | `HashMap`/`HashSet` (nondeterministic iteration order)         | lib code of the deterministic crates | no — hard fail |
//! | D002 | wall-clock / entropy (`Instant::now`, `SystemTime`, `thread_rng`) | lib + bin code outside `cms-bench` | no — hard fail |
//! | D003 | unordered parallel float reduction (folding `join()`ed worker results with float `sum`/`fold`/`reduce` in one expression) | lib code everywhere | no — hard fail |
//! | P001 | `.unwrap()` / `.expect(…)` / `panic!` in library code          | lib code everywhere                | yes — baseline |
//! | P002 | heap allocation (`Vec::new`, `vec![…]`, `.collect()`) inside a function marked `// lint: hot` | lib code of the deterministic crates | yes — baseline |
//! | H001 | crate root missing `#![forbid(unsafe_code)]`                   | every crate root                   | no — hard fail |
//! | L000 | `lint: allow(…)` directive without a reason                    | anywhere a directive appears       | no — hard fail |
//! | D004 | deterministic-crate function *transitively* reaching a D002 sink through the workspace call graph | lib code of the deterministic crates | no — hard fail |
//! | P003 | heap allocation in a function *transitively reachable* from a `// lint: hot` function | lib code, closure rooted in deterministic-crate hot functions | yes — baseline |
//! | D005 | `Mutex`/`RwLock`/`Atomic*` shared state, or a non-SeqCst atomic ordering | lib code of the deterministic crates | no — hard fail |
//!
//! D004 and P003 are interprocedural: they run on the workspace call
//! graph (`graph`/`taint` modules) and carry the source→sink call chain
//! in [`Diagnostic::chain`]. D005 is lexical, like D001.
//!
//! Escape hatch: `// lint: allow(RULE) reason` on the offending line or
//! the line directly above suppresses that rule there;
//! `// lint: allow-file(RULE) reason` suppresses it for the whole file.
//! The reason is mandatory either way (a bare directive suppresses
//! nothing and trips L000). `#[cfg(test)]` items and `tests/`,
//! `benches/`, `examples/` sources are outside the contract and skipped.
//!
//! Opt-in marker: a bare `// lint: hot` comment directly above (or on the
//! first line of) a function declares it steady-state hot; P002 then holds
//! that function's body to the zero-allocation contract of DESIGN.md §7.

use crate::tokenizer::{tokenize, AllowDirective, Lexed, Tok, TokKind};
use crate::workspace::{FileClass, SourceFile};

/// Crates bound by the bit-identical replay contract: rule D001 applies
/// to their library code. `cms-trace` is included because exported event
/// streams carry the same byte-identical promise as the metrics
/// (DESIGN.md §6).
pub const DETERMINISTIC_CRATES: [&str; 9] = [
    "cms-sim",
    "cms-disk",
    "cms-admission",
    "cms-core",
    "cms-server",
    "cms-trace",
    "cms-fault",
    "cms-conformance",
    "cms-cluster",
];

/// The only crate allowed to read wall clocks or OS entropy (it measures
/// real time by design).
pub const TIMING_CRATE: &str = "cms-bench";

/// Static description of one rule.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Stable rule id, e.g. `P001`.
    pub id: &'static str,
    /// One-line rationale.
    pub summary: &'static str,
    /// Whether existing debt may be carried in the baseline (`true`) or
    /// any occurrence fails the run (`false`).
    pub ratchetable: bool,
}

/// The full catalogue, in report order.
pub const RULES: [RuleInfo; 10] = [
    RuleInfo {
        id: "D001",
        summary: "HashMap/HashSet iteration order is nondeterministic; use BTreeMap/BTreeSet or sort before iterating",
        ratchetable: false,
    },
    RuleInfo {
        id: "D002",
        summary: "wall-clock/entropy source (Instant::now, SystemTime, thread_rng) outside cms-bench breaks replay",
        ratchetable: false,
    },
    RuleInfo {
        id: "D003",
        summary: "float reduction folded directly over thread join() results; collect and merge in disk-ID order",
        ratchetable: false,
    },
    RuleInfo {
        id: "P001",
        summary: "unwrap/expect/panic! in library code can turn a recoverable disk failure into a crash",
        ratchetable: true,
    },
    RuleInfo {
        id: "P002",
        summary: "heap allocation (Vec::new, vec![], .collect()) inside a `// lint: hot` function; reuse a scratch buffer (DESIGN.md §7)",
        ratchetable: true,
    },
    RuleInfo {
        id: "H001",
        summary: "crate root missing #![forbid(unsafe_code)]",
        ratchetable: false,
    },
    RuleInfo {
        id: "L000",
        summary: "lint: allow(...) directive without a mandatory reason",
        ratchetable: false,
    },
    RuleInfo {
        id: "D004",
        summary: "deterministic-crate function transitively reaches a wall-clock/entropy sink through the workspace call graph",
        ratchetable: false,
    },
    RuleInfo {
        id: "P003",
        summary: "heap allocation in a function transitively reachable from a `// lint: hot` function (interprocedural closure of P002)",
        ratchetable: true,
    },
    RuleInfo {
        id: "D005",
        summary: "Mutex/RwLock/Atomic* shared state (or non-SeqCst ordering) in deterministic-crate lib code risks interleaving-dependent replay",
        ratchetable: false,
    },
];

/// Looks up a rule by id.
#[must_use]
pub fn rule(id: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.id == id)
}

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule id from the catalogue.
    pub rule: String,
    /// Human-readable description of this occurrence.
    pub message: String,
    /// Call-chain provenance for interprocedural rules (D004/P003):
    /// qualified function names from the taint source to the sink.
    /// Empty for token-level rules.
    pub chain: Vec<String>,
}

impl Diagnostic {
    /// A token-level diagnostic (no call-chain provenance).
    #[must_use]
    pub fn new(file: &str, line: u32, rule: &str, message: String) -> Diagnostic {
        Diagnostic {
            file: file.to_string(),
            line,
            rule: rule.to_string(),
            message,
            chain: Vec::new(),
        }
    }

    /// `file:line:rule message` — the grep-able text form. Interprocedural
    /// findings append their call chain as ` [via a -> b -> c]`.
    #[must_use]
    pub fn render(&self) -> String {
        if self.chain.is_empty() {
            format!("{}:{}:{} {}", self.file, self.line, self.rule, self.message)
        } else {
            format!(
                "{}:{}:{} {} [via {}]",
                self.file,
                self.line,
                self.rule,
                self.message,
                self.chain.join(" -> ")
            )
        }
    }
}

/// Token indices covered by `#[cfg(test)]` items (the attribute plus the
/// item it decorates, through its closing brace or semicolon). Shared
/// with the call-graph extractor, which must not index test functions.
pub(crate) fn test_region_mask(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_punct('#') && toks.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            // Find the closing ']' of the attribute and look for
            // cfg(... test ...) inside it.
            let mut depth = 0i32;
            let mut j = i + 1;
            let mut has_cfg = false;
            let mut has_test = false;
            while j < toks.len() {
                let t = &toks[j];
                if t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if t.is_ident("cfg") {
                    has_cfg = true;
                } else if t.is_ident("test") {
                    has_test = true;
                }
                j += 1;
            }
            if has_cfg && has_test && j < toks.len() {
                // Mask the attribute and the following item: everything
                // up to the matching '}' of its first brace block, or the
                // first top-level ';' if none opens.
                let mut k = j + 1;
                let mut brace = 0i32;
                let mut entered = false;
                while k < toks.len() {
                    let t = &toks[k];
                    if t.is_punct('{') {
                        brace += 1;
                        entered = true;
                    } else if t.is_punct('}') {
                        brace -= 1;
                        if entered && brace == 0 {
                            break;
                        }
                    } else if t.is_punct(';') && !entered {
                        break;
                    }
                    k += 1;
                }
                for m in mask.iter_mut().take((k + 1).min(toks.len())).skip(i) {
                    *m = true;
                }
                i = k + 1;
                continue;
            }
            i = j + 1;
            continue;
        }
        i += 1;
    }
    mask
}

/// Token indices covered by functions declared hot with a `// lint: hot`
/// marker. A marker on line `L` claims the function whose `fn` keyword
/// sits on `L` or `L + 1` (same placement contract as `allowed`); the
/// region runs from that keyword through the function body's closing
/// brace. Markers with no adjacent `fn` claim nothing.
fn hot_region_mask(toks: &[Tok], hots: &[u32]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    for &marker in hots {
        let Some(start) = toks.iter().position(|t| {
            t.is_ident("fn") && (t.line == marker || t.line == marker + 1)
        }) else {
            continue;
        };
        let mut brace = 0i32;
        let mut entered = false;
        let mut end = start;
        for (k, t) in toks.iter().enumerate().skip(start) {
            if t.is_punct('{') {
                brace += 1;
                entered = true;
            } else if t.is_punct('}') {
                brace -= 1;
                if entered && brace == 0 {
                    end = k;
                    break;
                }
            } else if t.is_punct(';') && !entered {
                // Signature-only item (trait method): nothing to claim.
                end = start;
                break;
            }
            end = k;
        }
        for m in &mut mask[start..=end] {
            *m = true;
        }
    }
    mask
}

/// Is a diagnostic of `rule_id` on `line` suppressed by a well-formed
/// allow directive (same line or the line above, or a file-scoped
/// `allow-file` anywhere in the file)? Shared with the taint pass.
pub(crate) fn allowed(allows: &[AllowDirective], rule_id: &str, line: u32) -> bool {
    allows.iter().any(|a| {
        a.rule == rule_id
            && a.has_reason
            && (a.file_scope || a.line == line || a.line + 1 == line)
    })
}

/// Analyzes one file's source text against the catalogue.
#[must_use]
pub fn analyze_source(file: &SourceFile, src: &str) -> Vec<Diagnostic> {
    analyze_lexed(file, &tokenize(src))
}

/// Analyzes an already-lexed file (the full-workspace pass lexes each
/// file exactly once and shares the stream with the call-graph builder).
#[must_use]
pub fn analyze_lexed(file: &SourceFile, lexed: &Lexed) -> Vec<Diagnostic> {
    let toks = &lexed.tokens;
    let mask = test_region_mask(toks);
    let hot = hot_region_mask(toks, &lexed.hots);
    let mut out: Vec<Diagnostic> = Vec::new();

    let mut push = |rule_id: &str, line: u32, message: String| {
        if !allowed(&lexed.allows, rule_id, line) {
            out.push(Diagnostic::new(&file.rel_path, line, rule_id, message));
        }
    };

    // L000: malformed escape hatches, independent of any other finding.
    for a in &lexed.allows {
        if !a.has_reason {
            push(
                "L000",
                a.line,
                format!("allow({}) without a reason; the reason is mandatory", a.rule),
            );
        }
    }

    // H001: crate roots must forbid unsafe code.
    if file.is_crate_root() && !has_forbid_unsafe(toks) {
        push("H001", 1, "crate root missing #![forbid(unsafe_code)]".to_string());
    }

    let lib_code = file.class == FileClass::Lib;
    let lintable = lib_code || file.class == FileClass::Bin;

    let deterministic =
        DETERMINISTIC_CRATES.contains(&file.crate_name.as_str()) && lib_code;
    let clock_scoped = file.crate_name != TIMING_CRATE && lintable;

    for (i, t) in toks.iter().enumerate() {
        if mask[i] || t.kind != TokKind::Ident {
            continue;
        }
        let prev_dot = i > 0 && toks[i - 1].is_punct('.');
        let next = toks.get(i + 1);

        // D001 — nondeterministic iteration order.
        if deterministic && (t.text == "HashMap" || t.text == "HashSet") {
            push(
                "D001",
                t.line,
                format!(
                    "{} in deterministic crate {}; use BTree{} or sort before iterating",
                    t.text,
                    file.crate_name,
                    if t.text == "HashMap" { "Map" } else { "Set" }
                ),
            );
        }

        // D005 — replay-hazard shared state: locks, atomics, or a
        // non-SeqCst ordering make an outcome a function of thread
        // interleaving, which the §5 contract forbids in deterministic
        // lib code. The scoped-worker merge never needs them (phase two
        // is single-threaded by construction); vetted measurement
        // plumbing documents itself via `lint: allow-file(D005) reason`.
        if deterministic {
            let is_lock = t.text == "Mutex" || t.text == "RwLock";
            let is_atomic = t.text.len() > "Atomic".len() && t.text.starts_with("Atomic");
            let weak_ordering = matches!(
                t.text.as_str(),
                "Relaxed" | "Acquire" | "Release" | "AcqRel"
            ) && i >= 3
                && toks[i - 1].is_punct(':')
                && toks[i - 2].is_punct(':')
                && toks[i - 3].is_ident("Ordering");
            if is_lock || is_atomic || weak_ordering {
                let what = if weak_ordering {
                    format!("Ordering::{}", t.text)
                } else {
                    t.text.clone()
                };
                push(
                    "D005",
                    t.line,
                    format!(
                        "`{what}` in deterministic crate {}: shared mutable state keyed to thread interleaving breaks bit-identical replay",
                        file.crate_name
                    ),
                );
            }
        }

        // D002 — wall clock / entropy.
        if clock_scoped {
            let instant_now = t.text == "Instant"
                && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
                && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
                && toks.get(i + 3).is_some_and(|t| t.is_ident("now"));
            if instant_now || t.text == "SystemTime" || t.text == "thread_rng" {
                push(
                    "D002",
                    t.line,
                    format!(
                        "wall-clock/entropy source `{}` outside {TIMING_CRATE} breaks seeded replay",
                        if instant_now { "Instant::now" } else { t.text.as_str() }
                    ),
                );
            }
        }

        // D003 — unordered parallel float reduction: join() folded with a
        // float sum/fold/reduce inside one statement.
        if lib_code && t.text == "join" && next.is_some_and(|t| t.is_punct('(')) {
            let mut j = i + 1;
            let mut float_seen = false;
            let mut reducer: Option<(&Tok, &'static str)> = None;
            while j < toks.len() && !toks[j].is_punct(';') {
                let u = &toks[j];
                match u.kind {
                    TokKind::Num if u.text.contains('.') || u.text.contains('e') => {
                        float_seen = true;
                    }
                    TokKind::Ident if u.text == "f64" || u.text == "f32" => {
                        float_seen = true;
                    }
                    TokKind::Ident
                        if matches!(u.text.as_str(), "sum" | "fold" | "reduce")
                            && j > 0
                            && toks[j - 1].is_punct('.') =>
                    {
                        let name: &'static str = match u.text.as_str() {
                            "sum" => "sum",
                            "fold" => "fold",
                            _ => "reduce",
                        };
                        reducer = Some((u, name));
                    }
                    _ => {}
                }
                j += 1;
            }
            if float_seen {
                if let Some((at, name)) = reducer {
                    push(
                        "D003",
                        at.line,
                        format!(
                            "float `{name}` folded directly over join() results; collect per-disk values and merge in disk-ID order"
                        ),
                    );
                }
            }
        }

        // P002 — heap allocation on a declared hot path.
        if deterministic && hot[i] {
            let call = next.is_some_and(|t| t.is_punct('('));
            let path = next.is_some_and(|t| t.is_punct(':'))
                && toks.get(i + 2).is_some_and(|t| t.is_punct(':'));
            let vec_new = t.text == "Vec"
                && path
                && toks.get(i + 3).is_some_and(|t| t.is_ident("new"));
            let vec_macro = t.text == "vec" && next.is_some_and(|t| t.is_punct('!'));
            let collect = t.text == "collect" && prev_dot && (call || path);
            if vec_new || vec_macro || collect {
                let what = if vec_new {
                    "Vec::new()"
                } else if vec_macro {
                    "vec![]"
                } else {
                    ".collect()"
                };
                push(
                    "P002",
                    t.line,
                    format!(
                        "{what} inside a `lint: hot` function; reuse a caller-owned scratch buffer"
                    ),
                );
            }
        }

        // P001 — panicking calls in library code.
        if lib_code {
            let call = next.is_some_and(|t| t.is_punct('('));
            if prev_dot && call && (t.text == "unwrap" || t.text == "expect") {
                push("P001", t.line, format!(".{}() in library code", t.text));
            } else if t.text == "panic" && next.is_some_and(|t| t.is_punct('!')) {
                push("P001", t.line, "panic! in library code".to_string());
            }
        }
    }

    out.sort_by(|a, b| (a.line, &a.rule).cmp(&(b.line, &b.rule)));
    out
}

/// Does the token stream contain the inner attribute
/// `#![forbid(unsafe_code)]`?
fn has_forbid_unsafe(toks: &[Tok]) -> bool {
    toks.windows(8).any(|w| {
        w[0].is_punct('#')
            && w[1].is_punct('!')
            && w[2].is_punct('[')
            && w[3].is_ident("forbid")
            && w[4].is_punct('(')
            && w[5].is_ident("unsafe_code")
            && w[6].is_punct(')')
            && w[7].is_punct(']')
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn file(rel: &str, class: FileClass, krate: &str) -> SourceFile {
        SourceFile {
            rel_path: rel.to_string(),
            abs_path: PathBuf::from(rel),
            class,
            crate_name: krate.to_string(),
        }
    }

    fn sim_lib() -> SourceFile {
        file("crates/sim/src/engine.rs", FileClass::Lib, "cms-sim")
    }

    fn rules_of(d: &[Diagnostic]) -> Vec<(String, u32)> {
        d.iter().map(|d| (d.rule.clone(), d.line)).collect()
    }

    #[test]
    fn d001_fires_only_in_deterministic_lib_code() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(rules_of(&analyze_source(&sim_lib(), src)), vec![("D001".into(), 1)]);
        // Same text in a non-deterministic crate: clean.
        let model = file("crates/model/src/lib.rs", FileClass::Lib, "cms-model");
        let d = analyze_source(&model, src);
        assert!(!d.iter().any(|d| d.rule == "D001"), "{d:?}");
        // ... and in test code of the deterministic crate: clean.
        let test_src = "#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n}\n";
        let d = analyze_source(&sim_lib(), test_src);
        assert!(d.iter().all(|d| d.rule != "D001"), "{d:?}");
    }

    #[test]
    fn d002_spares_the_bench_crate() {
        let src = "let t = Instant::now();\nlet s = SystemTime::now();\nlet r = thread_rng();\n";
        let d = analyze_source(&sim_lib(), src);
        assert_eq!(
            rules_of(&d),
            vec![("D002".into(), 1), ("D002".into(), 2), ("D002".into(), 3)]
        );
        let bench = file("crates/bench/src/figures.rs", FileClass::Lib, "cms-bench");
        assert!(analyze_source(&bench, src).is_empty());
    }

    #[test]
    fn d003_flags_float_reduction_over_joins() {
        let bad = "let busy: f64 = handles.into_iter().map(|h| h.join().unwrap_or(0.0)).sum();\n";
        let d = analyze_source(&sim_lib(), bad);
        assert!(d.iter().any(|d| d.rule == "D003"), "{d:?}");
        // Collect-then-merge (no reducer in the join statement): clean.
        let good = "let rounds: Vec<_> = handles.into_iter().flat_map(|h| h.join().unwrap_or_default()).collect();\nlet total: f64 = rounds.iter().map(|r| r.busy).sum();\n";
        let d = analyze_source(&sim_lib(), good);
        assert!(d.iter().all(|d| d.rule != "D003"), "{d:?}");
    }

    #[test]
    fn p001_scope_and_escape_hatch() {
        let src = "fn f() {\n    x.unwrap();\n    y.expect(\"msg\");\n    panic!(\"no\");\n}\n";
        let d = analyze_source(&sim_lib(), src);
        assert_eq!(
            rules_of(&d),
            vec![("P001".into(), 2), ("P001".into(), 3), ("P001".into(), 4)]
        );
        // Bins, tests, benches: exempt.
        for class in [FileClass::Bin, FileClass::Test, FileClass::Bench, FileClass::Example] {
            let f = file("crates/bench/src/bin/fig6.rs", class, "cms-bench");
            let d = analyze_source(&f, src);
            assert!(d.iter().all(|d| d.rule != "P001"), "{class:?}: {d:?}");
        }
        // Escape hatch with a reason suppresses; without one it does not
        // and L000 fires.
        let hatched = "// lint: allow(P001) join of a panicked worker is unrecoverable\nx.unwrap();\n";
        assert!(analyze_source(&sim_lib(), hatched).is_empty());
        let bare = "// lint: allow(P001)\nx.unwrap();\n";
        let d = analyze_source(&sim_lib(), bare);
        assert_eq!(rules_of(&d), vec![("L000".into(), 1), ("P001".into(), 2)]);
    }

    #[test]
    fn p002_flags_allocation_only_in_hot_functions() {
        let hot = "// lint: hot\nfn serve() {\n    let a = Vec::new();\n    let b = vec![1, 2];\n    let c: Vec<u32> = xs.iter().collect();\n    let d = xs.iter().collect::<Vec<_>>();\n}\nfn cold() {\n    let e = Vec::new();\n}\n";
        let d = analyze_source(&sim_lib(), hot);
        assert_eq!(
            rules_of(&d),
            vec![
                ("P002".into(), 3),
                ("P002".into(), 4),
                ("P002".into(), 5),
                ("P002".into(), 6)
            ]
        );
    }

    #[test]
    fn p002_scope_and_escape_hatch() {
        let src = "// lint: hot\nfn serve() {\n    let a = Vec::new();\n}\n";
        // Non-deterministic crate: exempt.
        let model = file("crates/model/src/lib.rs", FileClass::Lib, "cms-model");
        assert!(analyze_source(&model, src).iter().all(|d| d.rule != "P002"));
        // Bin code of a deterministic crate: exempt (hot contract covers lib).
        let bin = file("crates/sim/src/bin/tool.rs", FileClass::Bin, "cms-sim");
        assert!(analyze_source(&bin, src).iter().all(|d| d.rule != "P002"));
        // Allow directive with a reason suppresses the finding.
        let hatched = "// lint: hot\nfn serve() {\n    // lint: allow(P002) one-time growth before steady state\n    let a = Vec::new();\n}\n";
        assert!(analyze_source(&sim_lib(), hatched).is_empty());
        // Prose that merely mentions the marker claims nothing.
        let prose = "// this fn is on the lint: hot path for servicing\nfn serve() {\n    let a = Vec::new();\n}\n";
        assert!(analyze_source(&sim_lib(), prose).iter().all(|d| d.rule != "P002"));
    }

    #[test]
    fn p002_region_ends_at_the_function_brace() {
        // Allocation after the hot function's closing brace is clean even
        // on the same nesting path.
        let src = "// lint: hot\nfn serve(out: &mut Vec<u32>) {\n    out.clear();\n    if x { out.push(1); }\n}\nfn other() {\n    let v: Vec<u32> = ys.collect();\n}\n";
        assert!(analyze_source(&sim_lib(), src).is_empty());
    }

    #[test]
    fn d005_flags_shared_state_in_deterministic_lib_code() {
        let src = "use std::sync::Mutex;\nstatic N: AtomicU64 = AtomicU64::new(0);\nfn f() { N.fetch_add(1, Ordering::Relaxed); }\nfn g() { N.store(0, Ordering::SeqCst); }\n";
        let d = analyze_source(&sim_lib(), src);
        assert_eq!(
            rules_of(&d),
            vec![
                ("D005".into(), 1),
                ("D005".into(), 2),
                ("D005".into(), 2),
                ("D005".into(), 3)
            ]
        );
        // SeqCst orderings and cmp::Ordering are not findings.
        assert!(d.iter().all(|d| !d.message.contains("SeqCst")));
        let cmp = "fn f(a: u32, b: u32) -> Ordering { a.cmp(&b) }\nfn g() -> Ordering { Ordering::Less }\n";
        assert!(analyze_source(&sim_lib(), cmp).is_empty());
        // Outside the deterministic crates: clean.
        let model = file("crates/model/src/queueing.rs", FileClass::Lib, "cms-model");
        assert!(analyze_source(&model, src).is_empty());
    }

    #[test]
    fn d005_file_scoped_allow_suppresses_the_whole_file() {
        let src = "// lint: allow-file(D005) gauge counters are only read after workers join\nuse std::sync::Mutex;\nstatic B: AtomicBool = AtomicBool::new(false);\nfn f() { B.load(Ordering::Relaxed); }\n";
        assert!(analyze_source(&sim_lib(), src).is_empty());
        // Without a reason: suppresses nothing and trips L000.
        let bare = "// lint: allow-file(D005)\nuse std::sync::Mutex;\n";
        let d = analyze_source(&sim_lib(), bare);
        assert_eq!(rules_of(&d), vec![("L000".into(), 1), ("D005".into(), 2)]);
    }

    #[test]
    fn h001_checks_crate_roots_only() {
        let root = file("crates/sim/src/lib.rs", FileClass::Lib, "cms-sim");
        let d = analyze_source(&root, "pub mod engine;\n");
        assert_eq!(rules_of(&d), vec![("H001".into(), 1)]);
        let ok = "//! Docs first.\n#![forbid(unsafe_code)]\npub mod engine;\n";
        assert!(analyze_source(&root, ok).is_empty());
        // Non-root lib file: no H001.
        let d = analyze_source(&sim_lib(), "pub fn f() {}\n");
        assert!(d.is_empty());
    }

    #[test]
    fn doc_comment_examples_do_not_count() {
        let src = "/// ```\n/// let x = map.unwrap();\n/// ```\npub fn f() {}\n";
        assert!(analyze_source(&sim_lib(), src).is_empty());
    }
}
