//! Ratcheting baseline: carried debt may only shrink.
//!
//! The baseline is a plain text file (one `rule path count` triple per
//! line, sorted), deliberately not JSON so it diffs cleanly in review and
//! needs no parser beyond `str::split_whitespace`. Only rules marked
//! `ratchetable` in the catalogue may appear; everything else is a hard
//! failure regardless of any baseline entry.
//!
//! Comparison verdict per (rule, file) bucket:
//! * actual > baselined  → **regression**, run fails;
//! * actual < baselined  → **stale**, run fails with a hint to
//!   `--update-baseline` (this is the ratchet: improvements must be
//!   locked in, so they cannot silently regress later);
//! * equal               → carried debt, reported as a count only.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::rules::{rule, Diagnostic};

/// Debt counts keyed by `(rule, file)`.
pub type Counts = BTreeMap<(String, String), usize>;

/// Parses baseline text. Unknown or non-ratchetable rules and malformed
/// lines are reported as errors (a corrupt baseline must not silently
/// launder violations).
pub fn parse(text: &str) -> Result<Counts, String> {
    let mut counts = Counts::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(rule_id), Some(file), Some(n), None) =
            (parts.next(), parts.next(), parts.next(), parts.next())
        else {
            return Err(format!("baseline line {}: expected `rule path count`, got `{raw}`", idx + 1));
        };
        let Ok(n) = n.parse::<usize>() else {
            return Err(format!("baseline line {}: bad count `{n}`", idx + 1));
        };
        match rule(rule_id) {
            Some(info) if info.ratchetable => {}
            Some(_) => {
                return Err(format!(
                    "baseline line {}: rule {rule_id} is not ratchetable and may not be baselined",
                    idx + 1
                ));
            }
            None => return Err(format!("baseline line {}: unknown rule {rule_id}", idx + 1)),
        }
        if counts.insert((rule_id.to_string(), file.to_string()), n).is_some() {
            return Err(format!("baseline line {}: duplicate entry for {rule_id} {file}", idx + 1));
        }
    }
    Ok(counts)
}

/// Buckets the ratchetable diagnostics of a run into baseline counts.
#[must_use]
pub fn bucket(diags: &[Diagnostic]) -> Counts {
    let mut counts = Counts::new();
    for d in diags {
        if rule(&d.rule).is_some_and(|r| r.ratchetable) {
            *counts.entry((d.rule.clone(), d.file.clone())).or_insert(0) += 1;
        }
    }
    counts
}

/// Serializes counts to the canonical baseline text.
#[must_use]
pub fn render(counts: &Counts) -> String {
    let mut out = String::from(
        "# cms-lint ratchet baseline. One `rule path count` per line.\n\
         # Regenerate with: cargo run -p cms-lint -- --update-baseline\n\
         # Counts may only decrease; new violations are rejected outright.\n",
    );
    for ((rule_id, file), n) in counts {
        let _ = writeln!(out, "{rule_id} {file} {n}");
    }
    out
}

/// Outcome of checking a run against the baseline.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct Verdict {
    /// `(rule, file, actual, baselined)` buckets that grew (or are new).
    pub regressions: Vec<(String, String, usize, usize)>,
    /// `(rule, file, actual, baselined)` buckets that shrank — good, but
    /// the baseline must be refreshed to lock the gain in.
    pub stale: Vec<(String, String, usize, usize)>,
    /// Total carried (exactly-matching) violation count.
    pub carried: usize,
}

impl Verdict {
    /// Does the run pass?
    #[must_use]
    pub fn ok(&self) -> bool {
        self.regressions.is_empty() && self.stale.is_empty()
    }
}

/// Compares actual ratchetable counts against the baseline.
#[must_use]
pub fn compare(actual: &Counts, baseline: &Counts) -> Verdict {
    let mut v = Verdict::default();
    let mut keys: Vec<&(String, String)> = actual.keys().chain(baseline.keys()).collect();
    keys.sort();
    keys.dedup();
    for key in keys {
        let a = actual.get(key).copied().unwrap_or(0);
        let b = baseline.get(key).copied().unwrap_or(0);
        let (rule_id, file) = key;
        if a > b {
            v.regressions.push((rule_id.clone(), file.clone(), a, b));
        } else if a < b {
            v.stale.push((rule_id.clone(), file.clone(), a, b));
        } else {
            v.carried += a;
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(entries: &[(&str, &str, usize)]) -> Counts {
        entries
            .iter()
            .map(|(r, f, n)| ((r.to_string(), f.to_string()), *n))
            .collect()
    }

    #[test]
    fn round_trip() {
        let c = counts(&[("P001", "crates/sim/src/engine.rs", 3), ("P001", "src/lib.rs", 1)]);
        let parsed = parse(&render(&c)).expect("canonical text parses");
        assert_eq!(parsed, c);
    }

    #[test]
    fn rejects_non_ratchetable_and_garbage() {
        assert!(parse("D001 crates/sim/src/engine.rs 2\n").is_err());
        assert!(parse("X999 foo.rs 1\n").is_err());
        assert!(parse("P001 foo.rs not-a-number\n").is_err());
        assert!(parse("P001 foo.rs\n").is_err());
        assert!(parse("P001 foo.rs 1\nP001 foo.rs 2\n").is_err());
        assert!(parse("# comment\n\n").expect("comments ok").is_empty());
    }

    #[test]
    fn verdict_classifies_growth_shrinkage_and_carry() {
        let baseline = counts(&[("P001", "a.rs", 2), ("P001", "b.rs", 1)]);
        // a.rs grew, b.rs matches, c.rs is new.
        let actual = counts(&[("P001", "a.rs", 3), ("P001", "b.rs", 1), ("P001", "c.rs", 1)]);
        let v = compare(&actual, &baseline);
        assert!(!v.ok());
        assert_eq!(
            v.regressions,
            vec![
                ("P001".into(), "a.rs".into(), 3, 2),
                ("P001".into(), "c.rs".into(), 1, 0)
            ]
        );
        assert_eq!(v.carried, 1);
        // Shrinkage alone also fails (stale baseline must be refreshed).
        let improved = counts(&[("P001", "a.rs", 1), ("P001", "b.rs", 1)]);
        let v = compare(&improved, &baseline);
        assert!(!v.ok());
        assert_eq!(v.stale, vec![("P001".into(), "a.rs".into(), 1, 2)]);
        // Exact match passes.
        let v = compare(&baseline, &baseline);
        assert!(v.ok());
        assert_eq!(v.carried, 3);
    }
}
