//! Whole-workspace call graph: item extraction and best-effort call
//! resolution on top of the token stream.
//!
//! The extractor brace-matches item boundaries to find every `fn`
//! definition (crate, file-derived module, enclosing `impl`/`trait`
//! type, `// lint: hot` marker, direct D002/P002 sinks in the body) and
//! every call site inside it. Resolution is name-based with crate-path
//! disambiguation, bounded by the caller's transitive intra-workspace
//! dependency closure:
//!
//! * `path::to::f(…)` — if a path segment names a workspace crate
//!   (`cms_sim` → `cms-sim`), resolve inside that crate; if the last
//!   qualifier names a workspace `impl`/`trait` type in scope, resolve
//!   to that type's methods; if it names a sibling module, to that
//!   module's free functions. A qualifier that matches nothing in the
//!   workspace is external (`Vec::new`) — no edge.
//! * `f(…)` — free functions named `f`, same crate first, then the
//!   dependency closure.
//! * `x.m(…)` — the receiver type is unknown, so **conservatively** all
//!   workspace methods named `m` within the dependency closure get an
//!   edge (over-approximation is the safe direction for taint).
//! * `Self::f(…)` — methods `f` of the enclosing impl type.
//!
//! Ambiguity (several candidates surviving disambiguation) keeps every
//! candidate edge. Test regions (`#[cfg(test)]`, `tests/` files) are
//! excluded; the graph covers lib **and** bin code so chains through
//! binaries still render in the DOT export, while rule scoping happens
//! downstream in `taint`.

use std::collections::{BTreeMap, BTreeSet};

use crate::rules::test_region_mask;
use crate::tokenizer::{Lexed, Tok, TokKind};
use crate::workspace::{FileClass, SourceFile};

/// Keywords that look like `ident (` but never name a callable.
const NON_CALL_KEYWORDS: [&str; 14] = [
    "if", "while", "for", "match", "return", "loop", "fn", "move", "let", "else", "in",
    "as", "where", "use",
];

/// A direct sink occurrence inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SinkHit {
    /// What was called, e.g. `Instant::now` or `Vec::new`.
    pub what: String,
    /// 1-based source line of the occurrence.
    pub line: u32,
}

/// One extracted function definition.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Cargo package the file belongs to.
    pub crate_name: String,
    /// Workspace-relative file path.
    pub file: String,
    /// File-derived module name (`engine` for `crates/sim/src/engine.rs`).
    pub module: String,
    /// Enclosing `impl`/`trait` type, when the fn is a method.
    pub impl_type: Option<String>,
    /// Bare function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Declared hot via `// lint: hot`.
    pub is_hot: bool,
    /// Library code (as opposed to a bin target)?
    pub is_lib: bool,
    /// Direct wall-clock/entropy sinks in the body (D002 set).
    pub clock_sinks: Vec<SinkHit>,
    /// Direct allocation sinks in the body (P002 set).
    pub alloc_sinks: Vec<SinkHit>,
}

impl FnDef {
    /// `crate::module::[Type::]name` — the display form used in chains
    /// and the DOT export.
    #[must_use]
    pub fn display(&self) -> String {
        match &self.impl_type {
            Some(t) => format!("{}::{}::{}::{}", self.crate_name, self.module, t, self.name),
            None => format!("{}::{}::{}", self.crate_name, self.module, self.name),
        }
    }
}

/// How a call site names its callee.
#[derive(Debug, Clone)]
enum CallKind {
    /// `name(…)` or `path::name(…)`; the path excludes the name itself
    /// (leading `crate`/`self`/`super` stripped).
    Free { path: Vec<String> },
    /// `.name(…)`.
    Method,
}

/// One call site, pre-resolution.
#[derive(Debug, Clone)]
struct CallSite {
    name: String,
    kind: CallKind,
}

/// The resolved workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Every extracted function, in (file, line) order.
    pub fns: Vec<FnDef>,
    /// `edges[caller]` = sorted unique callee indices.
    pub edges: Vec<Vec<usize>>,
}

/// A function span inside one file's token stream.
struct FnSpan {
    /// Index of the body's opening `{`.
    body_open: usize,
    /// Index of the body's closing `}` (inclusive).
    body_close: usize,
    /// Graph node this span produced.
    fn_id: usize,
}

/// A region (impl/trait block) claiming a type name for the `fn`s inside.
struct TypeRegion {
    open: usize,
    close: usize,
    type_name: String,
}

/// Builds the call graph over `files`, where each entry pairs the
/// discovered file with its lexed token stream. `deps` is the transitive
/// intra-workspace dependency closure from [`crate::workspace::crate_deps`].
#[must_use]
pub fn build(
    files: &[(&SourceFile, &Lexed)],
    deps: &BTreeMap<String, BTreeSet<String>>,
) -> CallGraph {
    let mut graph = CallGraph::default();
    let mut calls: Vec<Vec<CallSite>> = Vec::new();

    // Pass 1: extract definitions, sinks and raw call sites per file.
    for (file, lexed) in files {
        if matches!(file.class, FileClass::Test | FileClass::Bench | FileClass::Example) {
            continue;
        }
        extract_file(file, lexed, &mut graph, &mut calls);
    }

    // Pass 2: resolve call sites to edges.
    let index = NameIndex::new(&graph.fns);
    graph.edges = calls
        .iter()
        .enumerate()
        .map(|(caller, sites)| {
            let mut out: BTreeSet<usize> = BTreeSet::new();
            for site in sites {
                index.resolve(&graph.fns, deps, caller, site, &mut out);
            }
            out.remove(&caller); // self-recursion adds nothing to taint
            out.into_iter().collect()
        })
        .collect();
    graph
}

/// Name-based candidate index over the extracted functions.
struct NameIndex {
    methods: BTreeMap<String, Vec<usize>>,
    free: BTreeMap<String, Vec<usize>>,
    impl_types: BTreeSet<String>,
    modules: BTreeSet<String>,
    crates: BTreeSet<String>,
}

impl NameIndex {
    fn new(fns: &[FnDef]) -> NameIndex {
        let mut methods: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut free: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut impl_types = BTreeSet::new();
        let mut modules = BTreeSet::new();
        let mut crates = BTreeSet::new();
        for (id, f) in fns.iter().enumerate() {
            if let Some(t) = &f.impl_type {
                methods.entry(f.name.clone()).or_default().push(id);
                impl_types.insert(t.clone());
            } else {
                free.entry(f.name.clone()).or_default().push(id);
            }
            modules.insert(f.module.clone());
            crates.insert(f.crate_name.clone());
        }
        NameIndex { methods, free, impl_types, modules, crates }
    }

    /// Is `fn_id` visible from `caller` (same crate or in its transitive
    /// dependency closure)?
    fn in_scope(
        fns: &[FnDef],
        deps: &BTreeMap<String, BTreeSet<String>>,
        caller: usize,
        fn_id: usize,
    ) -> bool {
        let c = &fns[caller].crate_name;
        let t = &fns[fn_id].crate_name;
        c == t || deps.get(c).is_some_and(|d| d.contains(t))
    }

    /// Resolves one call site into `out` (possibly several candidates —
    /// ambiguity keeps all of them).
    fn resolve(
        &self,
        fns: &[FnDef],
        deps: &BTreeMap<String, BTreeSet<String>>,
        caller: usize,
        site: &CallSite,
        out: &mut BTreeSet<usize>,
    ) {
        match &site.kind {
            CallKind::Method => {
                if let Some(cands) = self.methods.get(&site.name) {
                    out.extend(
                        cands
                            .iter()
                            .copied()
                            .filter(|&id| Self::in_scope(fns, deps, caller, id)),
                    );
                }
            }
            CallKind::Free { path } if path.is_empty() => {
                let Some(cands) = self.free.get(&site.name) else { return };
                let same_crate: Vec<usize> = cands
                    .iter()
                    .copied()
                    .filter(|&id| fns[id].crate_name == fns[caller].crate_name)
                    .collect();
                if same_crate.is_empty() {
                    out.extend(
                        cands
                            .iter()
                            .copied()
                            .filter(|&id| Self::in_scope(fns, deps, caller, id)),
                    );
                } else {
                    out.extend(same_crate);
                }
            }
            CallKind::Free { path } => {
                // `Self::f` — methods of the enclosing impl type.
                if path.first().is_some_and(|s| s == "Self") {
                    let Some(own_type) = fns[caller].impl_type.clone() else { return };
                    if let Some(cands) = self.methods.get(&site.name) {
                        out.extend(cands.iter().copied().filter(|&id| {
                            fns[id].impl_type.as_deref() == Some(own_type.as_str())
                                && fns[id].crate_name == fns[caller].crate_name
                        }));
                    }
                    return;
                }
                // A segment naming a workspace crate pins the crate.
                let crate_hint = path.iter().find_map(|seg| {
                    let dashed = seg.replace('_', "-");
                    if self.crates.contains(&dashed) {
                        Some(dashed)
                    } else if self.crates.contains(seg) {
                        Some(seg.clone())
                    } else {
                        None
                    }
                });
                // The segment directly qualifying the name (`b` in
                // `a::b::f(…)`) — the path is stored innermost-first.
                let qualifier = path.first().cloned().unwrap_or_default();
                let type_qualified = self.impl_types.contains(&qualifier);
                let module_qualified = self.modules.contains(&qualifier);
                let cands = if type_qualified {
                    self.methods.get(&site.name)
                } else {
                    self.free.get(&site.name)
                };
                let Some(cands) = cands else {
                    // Type-qualified call with no matching method, or
                    // free call with no matching fn: maybe the qualifier
                    // is a type but the target is a free fn, or vice
                    // versa. Try the other table before giving up.
                    let other = if type_qualified {
                        self.free.get(&site.name)
                    } else {
                        self.methods.get(&site.name)
                    };
                    if let (Some(other), Some(hint)) = (other, &crate_hint) {
                        out.extend(other.iter().copied().filter(|&id| {
                            fns[id].crate_name == *hint
                        }));
                    }
                    return;
                };
                let scoped = cands
                    .iter()
                    .copied()
                    .filter(|&id| Self::in_scope(fns, deps, caller, id));
                if let Some(hint) = crate_hint {
                    out.extend(scoped.filter(|&id| fns[id].crate_name == hint));
                } else if type_qualified {
                    out.extend(
                        scoped.filter(|&id| fns[id].impl_type.as_deref() == Some(qualifier.as_str())),
                    );
                } else if module_qualified {
                    let narrowed: Vec<usize> =
                        scoped.filter(|&id| fns[id].module == qualifier).collect();
                    out.extend(narrowed);
                } else {
                    // Qualifier matches nothing in the workspace:
                    // external (std or vendored) — no edge.
                }
            }
        }
    }
}

/// Extracts definitions and call sites from one file.
fn extract_file(
    file: &SourceFile,
    lexed: &Lexed,
    graph: &mut CallGraph,
    calls: &mut Vec<Vec<CallSite>>,
) {
    let toks = &lexed.tokens;
    let tests = test_region_mask(toks);
    let type_regions = find_type_regions(toks);
    let module = module_of(&file.rel_path);
    let is_lib = file.class == FileClass::Lib;

    // Find fn spans.
    let mut spans: Vec<FnSpan> = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if tests[i] || !toks[i].is_ident("fn") {
            i += 1;
            continue;
        }
        let Some(name_tok) = toks.get(i + 1) else { break };
        if name_tok.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        let Some((body_open, body_close)) = fn_body_span(toks, i) else {
            // Signature-only (trait method declaration): no node.
            i += 1;
            continue;
        };
        let impl_type = type_regions
            .iter()
            .filter(|r| r.open < i && i < r.close)
            .max_by_key(|r| r.open)
            .map(|r| r.type_name.clone());
        let is_hot = lexed
            .hots
            .iter()
            .any(|&m| name_tok.line == m || name_tok.line == m + 1);
        let fn_id = graph.fns.len();
        graph.fns.push(FnDef {
            crate_name: file.crate_name.clone(),
            file: file.rel_path.clone(),
            module: module.clone(),
            impl_type,
            name: name_tok.text.clone(),
            line: toks[i].line,
            is_hot,
            is_lib,
            clock_sinks: Vec::new(),
            alloc_sinks: Vec::new(),
        });
        calls.push(Vec::new());
        spans.push(FnSpan { body_open, body_close, fn_id });
        i += 2;
    }

    // Attribute call sites and sinks to the innermost enclosing fn.
    let innermost = |idx: usize| -> Option<usize> {
        spans
            .iter()
            .filter(|s| s.body_open < idx && idx < s.body_close)
            .max_by_key(|s| s.body_open)
            .map(|s| s.fn_id)
    };
    for (j, t) in toks.iter().enumerate() {
        if tests[j] || t.kind != TokKind::Ident {
            continue;
        }
        let Some(owner) = innermost(j) else { continue };
        let next = toks.get(j + 1);

        // Direct sinks (mirrors the D002 / P002 token patterns).
        let path2 = next.is_some_and(|t| t.is_punct(':'))
            && toks.get(j + 2).is_some_and(|t| t.is_punct(':'));
        if (t.text == "Instant" && path2 && toks.get(j + 3).is_some_and(|t| t.is_ident("now")))
            || t.text == "SystemTime"
            || t.text == "thread_rng"
        {
            let what = if t.text == "Instant" { "Instant::now" } else { t.text.as_str() };
            graph.fns[owner]
                .clock_sinks
                .push(SinkHit { what: what.to_string(), line: t.line });
        }
        let vec_new =
            t.text == "Vec" && path2 && toks.get(j + 3).is_some_and(|t| t.is_ident("new"));
        let vec_macro = t.text == "vec" && next.is_some_and(|t| t.is_punct('!'));
        let collect = t.text == "collect"
            && j > 0
            && toks[j - 1].is_punct('.')
            && (next.is_some_and(|t| t.is_punct('(')) || path2);
        if vec_new || vec_macro || collect {
            let what = if vec_new {
                "Vec::new"
            } else if vec_macro {
                "vec!"
            } else {
                ".collect()"
            };
            graph.fns[owner]
                .alloc_sinks
                .push(SinkHit { what: what.to_string(), line: t.line });
        }

        // Call sites: `ident (`.
        if !next.is_some_and(|t| t.is_punct('(')) {
            continue;
        }
        if NON_CALL_KEYWORDS.contains(&t.text.as_str()) {
            continue;
        }
        // `fn name(` is a definition, not a call.
        if j > 0 && toks[j - 1].is_ident("fn") {
            continue;
        }
        if j > 0 && toks[j - 1].is_punct('.') {
            calls[owner].push(CallSite { name: t.text.clone(), kind: CallKind::Method });
            continue;
        }
        // Walk the `::`-path backwards: `a::b::name(`.
        let mut path: Vec<String> = Vec::new();
        let mut k = j;
        while k >= 3
            && toks[k - 1].is_punct(':')
            && toks[k - 2].is_punct(':')
            && toks[k - 3].kind == TokKind::Ident
        {
            path.push(toks[k - 3].text.clone());
            k -= 3;
        }
        // `path` is innermost-qualifier-first; drop crate-relative
        // anchors which carry no name information.
        path.retain(|s| s != "crate" && s != "self" && s != "super");
        calls[owner].push(CallSite { name: t.text.clone(), kind: CallKind::Free { path } });
    }
}

/// The body span (`{` index, matching `}` index) of the `fn` whose
/// keyword sits at `start`, or `None` for signature-only declarations.
fn fn_body_span(toks: &[Tok], start: usize) -> Option<(usize, usize)> {
    let mut brace = 0i32;
    let mut open = None;
    for (k, t) in toks.iter().enumerate().skip(start) {
        if t.is_punct('{') {
            brace += 1;
            if open.is_none() {
                open = Some(k);
            }
        } else if t.is_punct('}') {
            brace -= 1;
            if brace == 0 {
                if let Some(o) = open {
                    return Some((o, k));
                }
            }
        } else if t.is_punct(';') && open.is_none() {
            return None;
        }
    }
    None
}

/// Every `impl`/`trait` block region with the type name it claims.
fn find_type_regions(toks: &[Tok]) -> Vec<TypeRegion> {
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if !(t.is_ident("impl") || t.is_ident("trait")) {
            i += 1;
            continue;
        }
        let is_trait = t.is_ident("trait");
        // Scan the header to the opening `{`, tracking angle-bracket
        // depth so generic parameters don't pollute the name choice.
        let mut angle = 0i32;
        let mut idents_at_top: Vec<&str> = Vec::new();
        let mut after_for: Option<&str> = None;
        let mut saw_for = false;
        let mut j = i + 1;
        let mut open = None;
        while j < toks.len() {
            let u = &toks[j];
            if u.is_punct('<') {
                angle += 1;
            } else if u.is_punct('>') {
                angle -= 1;
            } else if u.is_punct('{') && angle <= 0 {
                open = Some(j);
                break;
            } else if u.is_punct(';') && angle <= 0 {
                break; // `impl Trait for Type;` style marker — no body
            } else if u.kind == TokKind::Ident && angle <= 0 {
                if u.text == "for" {
                    saw_for = true;
                } else if u.text == "where" {
                    // Nothing after `where` names the implementing type.
                    while j < toks.len() && !toks[j].is_punct('{') {
                        j += 1;
                    }
                    continue;
                } else if saw_for {
                    // For a path `a::b::Type`, the name is the final
                    // segment: a segment followed by `::` is a qualifier.
                    if toks.get(j + 1).is_some_and(|t| t.is_punct(':')) {
                        after_for = None;
                    } else if after_for.is_none() {
                        after_for = Some(&u.text);
                    }
                } else if u.text != "dyn" && u.text != "unsafe" {
                    idents_at_top.push(&u.text);
                }
            }
            j += 1;
        }
        let Some(open) = open else {
            i = j + 1;
            continue;
        };
        let type_name = if is_trait {
            idents_at_top.first().copied()
        } else if saw_for {
            after_for.or_else(|| idents_at_top.last().copied())
        } else {
            idents_at_top.first().copied()
        };
        // Find the matching close brace.
        let mut brace = 0i32;
        let mut close = toks.len().saturating_sub(1);
        for (k, u) in toks.iter().enumerate().skip(open) {
            if u.is_punct('{') {
                brace += 1;
            } else if u.is_punct('}') {
                brace -= 1;
                if brace == 0 {
                    close = k;
                    break;
                }
            }
        }
        if let Some(name) = type_name {
            regions.push(TypeRegion { open, close, type_name: name.to_string() });
        }
        i = open + 1;
    }
    regions
}

/// File-derived module name: the stem for normal files, the parent
/// directory for `mod.rs`, and the crate name for roots.
fn module_of(rel_path: &str) -> String {
    let stem = rel_path
        .rsplit('/')
        .next()
        .and_then(|f| f.strip_suffix(".rs"))
        .unwrap_or(rel_path);
    match stem {
        "lib" | "main" => "crate".to_string(),
        "mod" => {
            let parts: Vec<&str> = rel_path.split('/').collect();
            parts
                .len()
                .checked_sub(2)
                .and_then(|i| parts.get(i))
                .map_or_else(|| "crate".to_string(), |s| (*s).to_string())
        }
        s => s.to_string(),
    }
}

/// Node taint classification for the DOT export, computed by `taint`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NodeColor {
    /// Unremarkable function.
    #[default]
    Plain,
    /// Contains a direct wall-clock/entropy sink.
    ClockSink,
    /// Deterministic-crate function transitively reaching a clock sink.
    ClockTainted,
    /// Declared `// lint: hot`.
    Hot,
    /// Reachable from a hot function and allocates.
    HotAlloc,
    /// Reachable from a hot function (no direct allocation).
    HotReach,
}

impl NodeColor {
    fn fill(self) -> &'static str {
        match self {
            NodeColor::Plain => "#e8e8e8",
            NodeColor::ClockSink => "#e05555",
            NodeColor::ClockTainted => "#f2a654",
            NodeColor::Hot => "#5b8def",
            NodeColor::HotAlloc => "#b065d8",
            NodeColor::HotReach => "#a8c6f5",
        }
    }
}

/// Renders the graph as Graphviz DOT, one cluster per crate, nodes
/// filled by taint color. `colors` is indexed by fn id (defaulting to
/// [`NodeColor::Plain`] when shorter).
#[must_use]
pub fn to_dot(graph: &CallGraph, colors: &[NodeColor]) -> String {
    use std::fmt::Write as _;
    let mut s = String::from(
        "digraph cms_callgraph {\n  rankdir=LR;\n  node [shape=box, style=filled, fontsize=10];\n",
    );
    let mut by_crate: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (id, f) in graph.fns.iter().enumerate() {
        by_crate.entry(f.crate_name.as_str()).or_default().push(id);
    }
    for (krate, ids) in &by_crate {
        let cluster = krate.replace(['-', '.'], "_");
        let _ = writeln!(s, "  subgraph cluster_{cluster} {{");
        let _ = writeln!(s, "    label=\"{krate}\";");
        for &id in ids {
            let f = &graph.fns[id];
            let color = colors.get(id).copied().unwrap_or_default();
            let label = match &f.impl_type {
                Some(t) => format!("{}::{}::{}", f.module, t, f.name),
                None => format!("{}::{}", f.module, f.name),
            };
            let _ = writeln!(
                s,
                "    n{id} [label=\"{}\", fillcolor=\"{}\"];",
                crate::json_escape(&label),
                color.fill()
            );
        }
        let _ = writeln!(s, "  }}");
    }
    for (caller, callees) in graph.edges.iter().enumerate() {
        for &callee in callees {
            let _ = writeln!(s, "  n{caller} -> n{callee};");
        }
    }
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::tokenize;
    use std::path::PathBuf;

    fn file(rel: &str, class: FileClass, krate: &str) -> SourceFile {
        SourceFile {
            rel_path: rel.to_string(),
            abs_path: PathBuf::from(rel),
            class,
            crate_name: krate.to_string(),
        }
    }

    fn deps_of(pairs: &[(&str, &[&str])]) -> BTreeMap<String, BTreeSet<String>> {
        pairs
            .iter()
            .map(|(c, ds)| {
                let mut set: BTreeSet<String> = ds.iter().map(|s| (*s).to_string()).collect();
                set.insert((*c).to_string());
                ((*c).to_string(), set)
            })
            .collect()
    }

    fn build_one(src: &str) -> CallGraph {
        let f = file("crates/sim/src/engine.rs", FileClass::Lib, "cms-sim");
        let lexed = tokenize(src);
        build(&[(&f, &lexed)], &deps_of(&[("cms-sim", &[])]))
    }

    fn edge_names(g: &CallGraph, caller: &str) -> Vec<String> {
        let Some(id) = g.fns.iter().position(|f| f.name == caller) else {
            return Vec::new();
        };
        g.edges[id].iter().map(|&c| g.fns[c].name.clone()).collect()
    }

    #[test]
    fn extracts_free_fns_methods_and_hot_markers() {
        let g = build_one(
            "pub fn free_one() {}\nstruct S;\nimpl S {\n    // lint: hot\n    fn m(&self) { free_one(); }\n}\ntrait T {\n    fn sig_only(&self);\n    fn defaulted(&self) { free_one(); }\n}\n",
        );
        let names: Vec<&str> = g.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["free_one", "m", "defaulted"]);
        let m = g.fns.iter().find(|f| f.name == "m").expect("m");
        assert_eq!(m.impl_type.as_deref(), Some("S"));
        assert!(m.is_hot);
        let d = g.fns.iter().find(|f| f.name == "defaulted").expect("defaulted");
        assert_eq!(d.impl_type.as_deref(), Some("T"));
        assert_eq!(edge_names(&g, "m"), vec!["free_one"]);
        assert_eq!(edge_names(&g, "defaulted"), vec!["free_one"]);
    }

    #[test]
    fn impl_trait_for_type_attributes_methods_to_the_type() {
        let g = build_one(
            "struct Foo;\ntrait Run { fn run(&self) {} }\nimpl Run for Foo {\n    fn run(&self) { helper(); }\n}\nfn helper() {}\n",
        );
        let foo_run = g
            .fns
            .iter()
            .find(|f| f.name == "run" && f.impl_type.as_deref() == Some("Foo"))
            .expect("Foo::run extracted");
        assert_eq!(foo_run.impl_type.as_deref(), Some("Foo"));
    }

    #[test]
    fn sinks_are_attributed_to_the_innermost_fn() {
        let g = build_one(
            "fn outer() {\n    fn inner() { let v = Vec::new(); }\n    let t = Instant::now();\n}\n",
        );
        let outer = g.fns.iter().find(|f| f.name == "outer").expect("outer");
        assert_eq!(outer.clock_sinks.len(), 1);
        assert_eq!(outer.clock_sinks[0].what, "Instant::now");
        assert!(outer.alloc_sinks.is_empty());
        let inner = g.fns.iter().find(|f| f.name == "inner").expect("inner");
        assert_eq!(inner.alloc_sinks.len(), 1);
        assert_eq!(inner.alloc_sinks[0].what, "Vec::new");
    }

    #[test]
    fn unqualified_calls_prefer_the_callers_crate() {
        let a = file("crates/sim/src/engine.rs", FileClass::Lib, "cms-sim");
        let b = file("crates/disk/src/lib.rs", FileClass::Lib, "cms-disk");
        let la = tokenize("pub fn compute() {}\npub fn entry() { compute(); }\n");
        let lb = tokenize("#![forbid(unsafe_code)]\npub fn compute() {}\n");
        let g = build(
            &[(&a, &la), (&b, &lb)],
            &deps_of(&[("cms-sim", &["cms-disk"]), ("cms-disk", &[])]),
        );
        let entry = g.fns.iter().position(|f| f.name == "entry").expect("entry");
        let callees: Vec<&FnDef> = g.edges[entry].iter().map(|&c| &g.fns[c]).collect();
        assert_eq!(callees.len(), 1);
        assert_eq!(callees[0].crate_name, "cms-sim");
    }

    #[test]
    fn crate_qualified_calls_cross_crates() {
        let a = file("crates/sim/src/engine.rs", FileClass::Lib, "cms-sim");
        let b = file("crates/disk/src/cscan.rs", FileClass::Lib, "cms-disk");
        let la = tokenize("pub fn entry() { cms_disk::sweep(); }\n");
        let lb = tokenize("pub fn sweep() {}\n");
        let g = build(
            &[(&a, &la), (&b, &lb)],
            &deps_of(&[("cms-sim", &["cms-disk"]), ("cms-disk", &[])]),
        );
        assert_eq!(edge_names(&g, "entry"), vec!["sweep"]);
    }

    #[test]
    fn method_calls_resolve_within_the_dependency_closure_only() {
        let a = file("crates/sim/src/engine.rs", FileClass::Lib, "cms-sim");
        let b = file("crates/disk/src/lib.rs", FileClass::Lib, "cms-disk");
        let c = file("crates/bench/src/figures.rs", FileClass::Lib, "cms-bench");
        let la = tokenize("pub fn entry(d: D) { d.service(); }\n");
        let lb = tokenize("#![forbid(unsafe_code)]\nstruct D;\nimpl D { pub fn service(&self) {} }\n");
        // Same method name in a crate cms-sim does NOT depend on.
        let lc = tokenize("struct E;\nimpl E { pub fn service(&self) {} }\n");
        let g = build(
            &[(&a, &la), (&b, &lb), (&c, &lc)],
            &deps_of(&[("cms-sim", &["cms-disk"]), ("cms-disk", &[]), ("cms-bench", &[])]),
        );
        let entry = g.fns.iter().position(|f| f.name == "entry").expect("entry");
        let callees: Vec<&FnDef> = g.edges[entry].iter().map(|&c| &g.fns[c]).collect();
        assert_eq!(callees.len(), 1, "{callees:?}");
        assert_eq!(callees[0].crate_name, "cms-disk");
    }

    #[test]
    fn external_qualifiers_produce_no_edges() {
        let g = build_one(
            "pub fn new() {}\npub fn entry() { let v: Vec<u32> = Vec::new(); let b = Box::new(1); }\n",
        );
        // `Vec::new` / `Box::new` must not resolve to the workspace `new`.
        assert!(edge_names(&g, "entry").is_empty());
    }

    #[test]
    fn self_qualified_calls_resolve_to_the_enclosing_impl() {
        let g = build_one(
            "struct S;\nimpl S {\n    fn a(&self) { Self::b(); }\n    fn b() {}\n}\nstruct R;\nimpl R { fn b() {} }\n",
        );
        let a = g.fns.iter().position(|f| f.name == "a").expect("a");
        let callees: Vec<&FnDef> = g.edges[a].iter().map(|&c| &g.fns[c]).collect();
        assert_eq!(callees.len(), 1);
        assert_eq!(callees[0].impl_type.as_deref(), Some("S"));
    }

    #[test]
    fn test_regions_produce_no_nodes_or_edges() {
        let g = build_one(
            "pub fn real() {}\n#[cfg(test)]\nmod tests {\n    fn helper() { real(); }\n}\n",
        );
        let names: Vec<&str> = g.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["real"]);
    }

    #[test]
    fn dot_export_renders_clusters_nodes_and_edges() {
        let g = build_one("pub fn a() { b(); }\npub fn b() {}\n");
        let dot = to_dot(&g, &[NodeColor::Hot, NodeColor::Plain]);
        assert!(dot.contains("subgraph cluster_cms_sim"), "{dot}");
        assert!(dot.contains("n0 -> n1;"), "{dot}");
        assert!(dot.contains(NodeColor::Hot.fill()), "{dot}");
    }

    #[test]
    fn module_names_derive_from_paths() {
        assert_eq!(module_of("crates/sim/src/engine.rs"), "engine");
        assert_eq!(module_of("crates/sim/src/lib.rs"), "crate");
        assert_eq!(module_of("src/main.rs"), "crate");
        assert_eq!(module_of("crates/layout/src/flat/mod.rs"), "flat");
    }
}
