//! The taxonomy of fault-tolerance schemes studied by the paper.
//!
//! Two are the paper's contributions (declustered parity with static
//! contingency, and its dynamic-reservation refinement), two are the
//! pre-fetching variants of Section 6, and two are prior-art baselines the
//! evaluation compares against (streaming RAID and the non-clustered
//! scheme). Having the enum in `cms-core` lets layouts, admission
//! controllers, the analytical model and the bench harness all agree on
//! scheme identity without depending on each other.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A fault-tolerance scheme for the CM server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Scheme {
    /// §4: declustered parity (BIBD layout), static per-disk contingency
    /// bandwidth `f`; on failure the whole parity group is fetched.
    DeclusteredParity,
    /// §5: declustered parity with *dynamic* reservation — contingency
    /// follows each active clip across the disks of its parity groups.
    DynamicReservation,
    /// §6.1: pre-fetching with dedicated parity disks (clusters of `p`,
    /// one parity disk each); on failure only the parity block is read.
    PrefetchParityDisks,
    /// §6.2: pre-fetching with uniform, flat parity placement (clusters of
    /// `p−1` data disks, parity rotated over the following disks).
    PrefetchFlat,
    /// §7.3 baseline: streaming RAID (Tobagi et al. 1993) — whole parity
    /// group retrieved every round, cluster acts as one logical disk.
    StreamingRaid,
    /// §7.4 baseline: non-clustered scheme (Berson et al. 1995) — parity
    /// disks like §6.1 but double buffering only; on failure whole groups
    /// are read for the failed cluster, risking playback hiccups.
    NonClustered,
}

impl Scheme {
    /// All six schemes in the order the paper's figures list them.
    pub const ALL: [Scheme; 6] = [
        Scheme::StreamingRaid,
        Scheme::DeclusteredParity,
        Scheme::PrefetchFlat,
        Scheme::PrefetchParityDisks,
        Scheme::NonClustered,
        Scheme::DynamicReservation,
    ];

    /// The five schemes plotted in Figures 5 and 6 (dynamic reservation is
    /// evaluated separately in the paper's companion discussion; we bench
    /// it in the A1 ablation).
    pub const FIGURE_SCHEMES: [Scheme; 5] = [
        Scheme::StreamingRaid,
        Scheme::DeclusteredParity,
        Scheme::PrefetchFlat,
        Scheme::PrefetchParityDisks,
        Scheme::NonClustered,
    ];

    /// The label used in the paper's figure legends.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Scheme::DeclusteredParity => "Declustered parity",
            Scheme::DynamicReservation => "Dynamic reservation",
            Scheme::PrefetchParityDisks => "Pre-fetching with parity disk",
            Scheme::PrefetchFlat => "Pre-fetching without parity disk",
            Scheme::StreamingRaid => "Streaming RAID",
            Scheme::NonClustered => "Non-clustered",
        }
    }

    /// Does the scheme statically reserve contingency bandwidth `f` on
    /// every disk?
    #[must_use]
    pub fn uses_static_contingency(self) -> bool {
        matches!(self, Scheme::DeclusteredParity | Scheme::PrefetchFlat)
    }

    /// Does the scheme dedicate whole disks to parity (reducing the number
    /// of data-bearing disks to `d·(p−1)/p`)?
    #[must_use]
    pub fn uses_parity_disks(self) -> bool {
        matches!(
            self,
            Scheme::PrefetchParityDisks | Scheme::StreamingRaid | Scheme::NonClustered
        )
    }

    /// Does the scheme pre-fetch the data blocks of a parity group ahead
    /// of playback (Section 6's sequentiality trick)?
    #[must_use]
    pub fn prefetches_groups(self) -> bool {
        matches!(
            self,
            Scheme::PrefetchParityDisks | Scheme::PrefetchFlat | Scheme::StreamingRaid
        )
    }

    /// Can the scheme lose blocks / cause playback hiccups during the
    /// failure transition? Only the non-clustered baseline can (§7.4).
    #[must_use]
    pub fn risks_hiccups(self) -> bool {
        matches!(self, Scheme::NonClustered)
    }

    /// Whether the scheme needs the BIBD-based parity group table.
    #[must_use]
    pub fn needs_pgt(self) -> bool {
        matches!(self, Scheme::DeclusteredParity | Scheme::DynamicReservation)
    }
}

impl fmt::Display for Scheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn all_contains_six_distinct_schemes() {
        let set: BTreeSet<_> = Scheme::ALL.iter().collect();
        assert_eq!(set.len(), 6);
    }

    #[test]
    fn figure_schemes_excludes_dynamic() {
        assert!(!Scheme::FIGURE_SCHEMES.contains(&Scheme::DynamicReservation));
        assert_eq!(Scheme::FIGURE_SCHEMES.len(), 5);
    }

    #[test]
    fn labels_match_paper_legends() {
        assert_eq!(Scheme::StreamingRaid.label(), "Streaming RAID");
        assert_eq!(Scheme::DeclusteredParity.to_string(), "Declustered parity");
        assert_eq!(
            Scheme::PrefetchFlat.label(),
            "Pre-fetching without parity disk"
        );
    }

    #[test]
    fn classification_flags_are_consistent() {
        // Static contingency and dedicated parity disks are mutually
        // exclusive: reserving f on each disk only makes sense when parity
        // shares the data disks.
        for s in Scheme::ALL {
            assert!(
                !(s.uses_static_contingency() && s.uses_parity_disks()),
                "{s} cannot both reserve f and dedicate parity disks"
            );
        }
        // Only the declustered family needs a PGT.
        assert!(Scheme::DeclusteredParity.needs_pgt());
        assert!(Scheme::DynamicReservation.needs_pgt());
        assert!(!Scheme::StreamingRaid.needs_pgt());
        // Only non-clustered risks hiccups.
        let risky: Vec<_> = Scheme::ALL.iter().filter(|s| s.risks_hiccups()).collect();
        assert_eq!(risky, vec![&Scheme::NonClustered]);
    }

    #[test]
    fn serde_roundtrip() {
        for s in Scheme::ALL {
            let json = serde_json::to_string(&s).unwrap();
            let back: Scheme = serde_json::from_str(&json).unwrap();
            assert_eq!(back, s);
        }
    }
}
