//! The continuity-of-playback constraint (the paper's Equation 1) and the
//! quantities derived from it.
//!
//! A round lasts `b / r_p` seconds — the time a client takes to consume one
//! block. During one round a disk serves at most `q` block retrievals under
//! C-SCAN, where `q` is the largest integer satisfying
//!
//! ```text
//! q · (b/r_d + t_rot + t_settle) + 2·t_seek  ≤  b / r_p        (Eq. 1)
//! ```
//!
//! The left side charges each retrieval a worst-case rotation, a settle and
//! the inner-track transfer, plus two full-stroke seeks per round for the
//! two C-SCAN sweeps. Footnote 2 of the paper adds one more seek when a
//! disk may fail *mid-round* and reconstruction reads must be inserted into
//! an already-sorted sweep; [`ContinuityBudget::with_mid_round_failure`]
//! models that variant.

use crate::params::{DiskParams, ServerParams};
use crate::units::{transfer_time, BitsPerSec, Seconds};
use crate::CmsError;

/// Duration of one service round for block size `b` and playback rate
/// `r_p`: the time in which a client consumes exactly one block.
#[must_use]
pub fn round_duration(block_bytes: u64, playback_rate: BitsPerSec) -> Seconds {
    transfer_time(block_bytes, playback_rate)
}

/// A solved instance of Equation 1: how much work one disk may accept per
/// round without ever breaking a rate guarantee.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContinuityBudget {
    /// Block size `b` in bytes the budget was computed for.
    pub block_bytes: u64,
    /// Round duration `b / r_p` in seconds.
    pub round: Seconds,
    /// Worst-case time to retrieve one block (transfer + rotation +
    /// settle).
    pub per_block: Seconds,
    /// Seek overhead charged once per round (2·t_seek, or 3·t_seek in the
    /// mid-round-failure model).
    pub seek_overhead: Seconds,
    /// Maximum number of block retrievals per disk per round (`q`).
    pub q: u32,
}

impl ContinuityBudget {
    /// Solves Equation 1 for `q` given a disk model, block size and
    /// playback rate.
    ///
    /// # Errors
    ///
    /// Returns [`CmsError::InfeasibleConfig`] when even a single retrieval
    /// per round does not fit (the block is too small relative to the seek
    /// overhead), which would make the configuration unable to serve any
    /// client.
    pub fn solve(
        disk: &DiskParams,
        block_bytes: u64,
        playback_rate: BitsPerSec,
    ) -> Result<Self, CmsError> {
        Self::solve_with_seeks(disk, block_bytes, playback_rate, 2)
    }

    /// Footnote 2 variant: a disk failing in the middle of a round can
    /// force one additional sweep to pick up reconstruction reads, so three
    /// full-stroke seeks are charged per round.
    ///
    /// # Errors
    ///
    /// As for [`ContinuityBudget::solve`].
    pub fn with_mid_round_failure(
        disk: &DiskParams,
        block_bytes: u64,
        playback_rate: BitsPerSec,
    ) -> Result<Self, CmsError> {
        Self::solve_with_seeks(disk, block_bytes, playback_rate, 3)
    }

    fn solve_with_seeks(
        disk: &DiskParams,
        block_bytes: u64,
        playback_rate: BitsPerSec,
        seeks_per_round: u32,
    ) -> Result<Self, CmsError> {
        disk.validate()?;
        if block_bytes == 0 || playback_rate <= 0.0 {
            return Err(CmsError::invalid_params(
                "block size and playback rate must be positive",
            ));
        }
        let round = round_duration(block_bytes, playback_rate);
        let per_block = disk.block_service_time(block_bytes);
        let seek_overhead = f64::from(seeks_per_round) * disk.seek_worst;
        let budget = round - seek_overhead;
        if budget < per_block {
            return Err(CmsError::InfeasibleConfig {
                reason: format!(
                    "block size {block_bytes} B cannot sustain even one stream: \
                     round {round:.4}s, seek overhead {seek_overhead:.4}s, \
                     per-block {per_block:.4}s"
                ),
            });
        }
        // Floating-point guard: nudge by 1 ulp-ish epsilon so exact
        // boundary cases round the way the closed form intends.
        let q = ((budget / per_block) * (1.0 + 1e-12)).floor() as u32;
        Ok(ContinuityBudget {
            block_bytes,
            round,
            per_block,
            seek_overhead,
            q,
        })
    }

    /// Verifies Equation 1 for an arbitrary load of `n` retrievals, e.g.
    /// to check an admission decision.
    #[must_use]
    pub fn admits(&self, n: u32) -> bool {
        n <= self.q
    }

    /// Worst-case busy time of the disk when serving `n` retrievals in one
    /// round.
    #[must_use]
    pub fn busy_time(&self, n: u32) -> Seconds {
        self.seek_overhead + f64::from(n) * self.per_block
    }

    /// Fraction of the round the disk is busy at load `n` (may exceed 1.0
    /// for inadmissible loads).
    #[must_use]
    pub fn utilization(&self, n: u32) -> f64 {
        self.busy_time(n) / self.round
    }
}

/// Convenience wrapper: the per-disk service budget `q` for a full server
/// configuration (Equation 1 with the server's block size and playback
/// rate).
///
/// # Errors
///
/// See [`ContinuityBudget::solve`].
pub fn max_clips_per_round(params: &ServerParams) -> Result<u32, CmsError> {
    Ok(ContinuityBudget::solve(&params.disk, params.block_bytes, params.playback_rate)?.q)
}

/// Inverts Equation 1: the smallest block size (in bytes) for which a disk
/// can serve `q` streams per round. Larger blocks only help (the transfer
/// term grows more slowly than the round), so this is the cheapest feasible
/// block for a target stream count.
///
/// Solving Eq. 1 for `b` with equality:
///
/// ```text
/// q·(8b/r_d + t_rot + t_settle) + 2·t_seek = 8b/r_p
/// b = [q·(t_rot + t_settle) + 2·t_seek] / (8/r_p − 8q/r_d)
/// ```
///
/// # Errors
///
/// Returns [`CmsError::InfeasibleConfig`] when `q` exceeds the disk's
/// streaming limit `r_d / r_p` (no block size can help past that point).
pub fn max_block_size_for_q(
    disk: &DiskParams,
    q: u32,
    playback_rate: BitsPerSec,
) -> Result<u64, CmsError> {
    disk.validate()?;
    if q == 0 {
        return Err(CmsError::invalid_params("q must be >= 1"));
    }
    let denom = 8.0 / playback_rate - 8.0 * f64::from(q) / disk.transfer_rate;
    if denom <= 0.0 {
        return Err(CmsError::InfeasibleConfig {
            reason: format!(
                "q = {q} exceeds the disk streaming limit r_d/r_p = {:.1}",
                disk.transfer_rate / playback_rate
            ),
        });
    }
    let numer = f64::from(q) * (disk.rot_worst + disk.settle) + 2.0 * disk.seek_worst;
    Ok((numer / denom).ceil() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::{kib, mbps};

    fn disk() -> DiskParams {
        DiskParams::sigmod96()
    }

    #[test]
    fn q_matches_hand_calculation() {
        // b = 256 KiB, r_p = 1.5 Mbps.
        // round = 262144*8/1.5e6 = 1.39810 s
        // per_block = 262144*8/45e6 + 0.00834 + 0.0006 = 0.05554 s
        // q = floor((1.39810 - 0.034) / 0.05554) = floor(24.56) = 24
        let b = ContinuityBudget::solve(&disk(), kib(256), mbps(1.5)).unwrap();
        assert_eq!(b.q, 24);
        assert!(b.admits(24));
        assert!(!b.admits(25));
    }

    #[test]
    fn q_is_monotone_in_block_size() {
        let mut last = 0;
        for kb in [64u64, 128, 256, 512, 1024, 2048] {
            let b = ContinuityBudget::solve(&disk(), kib(kb), mbps(1.5)).unwrap();
            assert!(b.q >= last, "q must grow with block size");
            last = b.q;
        }
    }

    #[test]
    fn q_saturates_at_streaming_limit() {
        // r_d / r_p = 30: no block size can push q past 29 (seek/rot
        // overhead always consumes something).
        let b = ContinuityBudget::solve(&disk(), kib(64 * 1024), mbps(1.5)).unwrap();
        assert!(b.q < 30, "q = {} must stay below r_d/r_p", b.q);
    }

    #[test]
    fn mid_round_failure_charges_extra_seek() {
        let normal = ContinuityBudget::solve(&disk(), kib(256), mbps(1.5)).unwrap();
        let failure = ContinuityBudget::with_mid_round_failure(&disk(), kib(256), mbps(1.5)).unwrap();
        assert!(failure.seek_overhead > normal.seek_overhead);
        assert!(failure.q <= normal.q);
    }

    #[test]
    fn tiny_blocks_are_infeasible() {
        // A 1 KiB block gives a 5.5 ms round, less than 2 seeks (34 ms).
        let err = ContinuityBudget::solve(&disk(), 1024, mbps(1.5));
        assert!(matches!(err, Err(CmsError::InfeasibleConfig { .. })));
    }

    #[test]
    fn busy_time_and_utilization_are_consistent() {
        let b = ContinuityBudget::solve(&disk(), kib(256), mbps(1.5)).unwrap();
        assert!(b.busy_time(b.q) <= b.round + 1e-9, "Eq. 1 must hold at q");
        assert!(b.busy_time(b.q + 1) > b.round, "Eq. 1 must fail at q+1");
        assert!(b.utilization(b.q) <= 1.0 + 1e-9);
        assert!(b.utilization(0) > 0.0, "seek overhead is always paid");
    }

    #[test]
    fn block_size_inversion_roundtrips() {
        for q in [1u32, 5, 10, 20, 24] {
            let b = max_block_size_for_q(&disk(), q, mbps(1.5)).unwrap();
            let solved = ContinuityBudget::solve(&disk(), b, mbps(1.5)).unwrap();
            assert!(
                solved.q >= q,
                "block {b} solved for q={q} must admit at least q, got {}",
                solved.q
            );
        }
    }

    #[test]
    fn block_size_inversion_rejects_impossible_q() {
        assert!(max_block_size_for_q(&disk(), 30, mbps(1.5)).is_err());
        assert!(max_block_size_for_q(&disk(), 0, mbps(1.5)).is_err());
    }

    #[test]
    fn round_duration_is_block_over_rp() {
        let r = round_duration(kib(256), mbps(1.5));
        assert!((r - 1.398_101_3).abs() < 1e-5, "got {r}");
    }

    #[test]
    fn max_clips_per_round_uses_server_params() {
        let mut p = ServerParams::sigmod96_small_buffer();
        p.block_bytes = kib(256);
        assert_eq!(max_clips_per_round(&p).unwrap(), 24);
    }
}
