//! Disk and server parameters (the paper's Figure 1).
//!
//! The paper evaluates everything on a single reference disk model —
//! a mid-1990s 2 GB drive — and two server configurations (256 MB and
//! 2 GB of RAM buffer over a 32-disk array). [`DiskParams::sigmod96`]
//! and [`ServerParams`] encode those defaults; every field can be
//! overridden to model other hardware.

use crate::units::{gib, mbps, mib, millis, transfer_time, BitsPerSec, Seconds};
use crate::CmsError;
use serde::{Deserialize, Serialize};

/// Physical characteristics of one disk drive.
///
/// All latencies are *worst case*, as required by the paper's deterministic
/// admission-control math: Equation 1 charges every block retrieval a full
/// rotation plus settle, and every round two full-stroke seeks (C-SCAN
/// sweeps the arm across the surface at most twice per round).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiskParams {
    /// Inner-track transfer rate `r_d` in bits per second. Using the inner
    /// (slowest) track keeps the guarantee valid wherever data lands.
    pub transfer_rate: BitsPerSec,
    /// Head settle time `t_settle` in seconds.
    pub settle: Seconds,
    /// Worst-case seek `t_seek` (full stroke) in seconds.
    pub seek_worst: Seconds,
    /// Worst-case rotational latency `t_rot` (one full revolution) in
    /// seconds.
    pub rot_worst: Seconds,
    /// Formatted capacity `C_d` in bytes.
    pub capacity: u64,
}

impl DiskParams {
    /// The reference disk of the paper's Figure 1: 45 Mbps inner-track
    /// rate, 0.6 ms settle, 17 ms worst-case seek, 8.34 ms worst-case
    /// rotational latency, 2 GB capacity.
    #[must_use]
    pub fn sigmod96() -> Self {
        DiskParams {
            transfer_rate: mbps(45.0),
            settle: millis(0.6),
            seek_worst: millis(17.0),
            rot_worst: millis(8.34),
            capacity: gib(2),
        }
    }

    /// Total worst-case latency (`t_lat = t_seek + t_rot`) quoted as
    /// 25.5 ms in Figure 1 (with settle, 25.94 ms; the paper folds settle
    /// into the per-block charge instead).
    #[must_use]
    pub fn worst_latency(&self) -> Seconds {
        self.seek_worst + self.rot_worst
    }

    /// Worst-case time to retrieve one block of `block_bytes` bytes during
    /// a C-SCAN sweep: settle + full rotation + transfer. Seeks are charged
    /// separately, twice per round (Equation 1).
    #[must_use]
    pub fn block_service_time(&self, block_bytes: u64) -> Seconds {
        transfer_time(block_bytes, self.transfer_rate) + self.rot_worst + self.settle
    }

    /// Validates physical plausibility.
    ///
    /// # Errors
    ///
    /// Returns [`CmsError::InvalidParams`] if any rate/latency is
    /// non-positive or the capacity is zero.
    pub fn validate(&self) -> Result<(), CmsError> {
        if self.transfer_rate <= 0.0 {
            return Err(CmsError::invalid_params("transfer_rate must be > 0"));
        }
        if self.settle < 0.0 || self.seek_worst < 0.0 || self.rot_worst < 0.0 {
            return Err(CmsError::invalid_params("latencies must be >= 0"));
        }
        if self.capacity == 0 {
            return Err(CmsError::invalid_params("capacity must be > 0"));
        }
        Ok(())
    }
}

impl Default for DiskParams {
    fn default() -> Self {
        Self::sigmod96()
    }
}

/// Server-wide configuration: the disk array, the RAM buffer, the clip
/// playback rate and the striping/parity parameters chosen by the operator
/// (typically via `cms-model`'s `compute_optimal`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServerParams {
    /// Number of disks `d` in the array.
    pub disks: u32,
    /// Total RAM buffer `B` in bytes.
    pub buffer_bytes: u64,
    /// Stripe-unit (block) size `b` in bytes.
    pub block_bytes: u64,
    /// Parity group size `p` (number of blocks per parity group, parity
    /// block included).
    pub parity_group: u32,
    /// Clip playback rate `r_p` in bits per second (CBR; MPEG-1 in the
    /// paper).
    pub playback_rate: BitsPerSec,
    /// Per-disk contingency reservation `f` in blocks per round. Only used
    /// by the schemes that statically reserve bandwidth (declustered
    /// parity, prefetch without parity disks); zero otherwise.
    pub contingency: u32,
    /// Physical disk model.
    pub disk: DiskParams,
}

impl ServerParams {
    /// The paper's Section 8 base configuration: `d = 32` disks of the
    /// Figure 1 model, MPEG-1 playback (1.5 Mbps), buffer size as given.
    /// Block size, parity group size and contingency must still be chosen;
    /// the defaults here (`b = 256 KiB`, `p = 4`, `f = 1`) are placeholders
    /// that `cms-model` overrides per experiment.
    #[must_use]
    pub fn sigmod96(buffer_bytes: u64) -> Self {
        ServerParams {
            disks: 32,
            buffer_bytes,
            block_bytes: 256 * 1024,
            parity_group: 4,
            playback_rate: mbps(1.5),
            contingency: 1,
            disk: DiskParams::sigmod96(),
        }
    }

    /// The 256 MB-buffer configuration of Section 8.
    #[must_use]
    pub fn sigmod96_small_buffer() -> Self {
        Self::sigmod96(mib(256))
    }

    /// The 2 GB-buffer configuration of Section 8.
    #[must_use]
    pub fn sigmod96_large_buffer() -> Self {
        Self::sigmod96(gib(2))
    }

    /// Total raw capacity of the array in bytes.
    #[must_use]
    pub fn array_capacity(&self) -> u64 {
        u64::from(self.disks) * self.disk.capacity
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CmsError::InvalidParams`] when any structural requirement
    /// is violated (at least two disks, `2 <= p <= d`, positive block size
    /// and playback rate, buffer large enough for at least one clip's
    /// double buffer).
    pub fn validate(&self) -> Result<(), CmsError> {
        self.disk.validate()?;
        if self.disks < 2 {
            return Err(CmsError::invalid_params("need at least 2 disks"));
        }
        if self.parity_group < 2 || self.parity_group > self.disks {
            return Err(CmsError::invalid_params("parity group must satisfy 2 <= p <= d"));
        }
        if self.block_bytes == 0 {
            return Err(CmsError::invalid_params("block size must be > 0"));
        }
        if self.playback_rate <= 0.0 {
            return Err(CmsError::invalid_params("playback rate must be > 0"));
        }
        if self.buffer_bytes < 2 * self.block_bytes {
            return Err(CmsError::invalid_params(
                "buffer must hold at least one clip's double buffer (2b)",
            ));
        }
        Ok(())
    }
}

impl Default for ServerParams {
    fn default() -> Self {
        Self::sigmod96_small_buffer()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_reference_values() {
        let d = DiskParams::sigmod96();
        assert_eq!(d.transfer_rate, 45_000_000.0);
        assert!((d.settle - 0.0006).abs() < 1e-12);
        assert!((d.seek_worst - 0.017).abs() < 1e-12);
        assert!((d.rot_worst - 0.00834).abs() < 1e-12);
        assert_eq!(d.capacity, 2 << 30);
        // Figure 1 quotes t_lat = 25.5 ms ≈ seek + rotation (0.16 ms of
        // rounding in the paper's table).
        assert!((d.worst_latency() - 0.02534).abs() < 1e-9);
    }

    #[test]
    fn block_service_time_grows_with_block_size() {
        let d = DiskParams::sigmod96();
        let small = d.block_service_time(64 * 1024);
        let large = d.block_service_time(512 * 1024);
        assert!(large > small);
        // Fixed overhead is rotation + settle.
        assert!(small > d.rot_worst + d.settle);
    }

    #[test]
    fn default_server_is_valid() {
        ServerParams::sigmod96_small_buffer().validate().unwrap();
        ServerParams::sigmod96_large_buffer().validate().unwrap();
    }

    #[test]
    fn array_capacity_is_d_times_cd() {
        let s = ServerParams::sigmod96_small_buffer();
        assert_eq!(s.array_capacity(), 32 * (2u64 << 30));
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let base = ServerParams::sigmod96_small_buffer();

        let mut s = base;
        s.disks = 1;
        assert!(s.validate().is_err());

        let mut s = base;
        s.parity_group = 1;
        assert!(s.validate().is_err());

        let mut s = base;
        s.parity_group = 64; // > d
        assert!(s.validate().is_err());

        let mut s = base;
        s.block_bytes = 0;
        assert!(s.validate().is_err());

        let mut s = base;
        s.playback_rate = 0.0;
        assert!(s.validate().is_err());

        let mut s = base;
        s.buffer_bytes = s.block_bytes; // < 2b
        assert!(s.validate().is_err());

        let mut s = base;
        s.disk.capacity = 0;
        assert!(s.validate().is_err());
    }
}
