//! Grouped Sweeping Scheduling (GSS) — the Chen/Kandlur/Yu (ACM MM'93)
//! generalization the paper cites alongside Equation 1.
//!
//! C-SCAN serves all `q` streams in one sweep per round, which forces
//! full double buffering (`2b` per stream: a block being consumed plus a
//! block that may arrive at any point of the round). GSS splits the round
//! into `g` sub-rounds ("groups"), each serving `q/g` streams with its own
//! mini-sweep:
//!
//! * **seeks** — each sub-round pays its own two arm strokes, so the
//!   per-round seek charge grows to `2·g·t_seek`;
//! * **buffers** — a stream's next block always lands within a known
//!   `1/g` slice of the round, so per-stream buffering shrinks from `2b`
//!   toward `(1 + 1/g)·b`.
//!
//! `g = 1` is exactly Equation 1 with double buffering; `g = q` is
//! FCFS-like scheduling with minimal buffers and maximal seek overhead.
//! [`GssBudget::optimize`] picks the `g` that maximizes streams per disk
//! under a per-stream buffer budget — the knob the paper's Section 7
//! implicitly fixes at `g = 1`.

use crate::params::DiskParams;
use crate::units::{transfer_time, BitsPerSec, Seconds};
use crate::CmsError;

/// A solved GSS operating point for one disk.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GssBudget {
    /// Number of groups `g` (sub-rounds per round).
    pub groups: u32,
    /// Maximum streams per disk `q` (a multiple of the per-group count).
    pub q: u32,
    /// Streams per group (`q / g`, rounded down).
    pub per_group: u32,
    /// Per-stream buffer requirement in units of the block size:
    /// `1 + 1/g` blocks.
    pub buffer_blocks_per_stream: f64,
    /// Round duration `b / r_p`, seconds.
    pub round: Seconds,
}

impl GssBudget {
    /// Solves the GSS continuity constraint for a given group count:
    /// the largest `q` (multiple of `g`… conservatively `per_group·g`)
    /// with
    ///
    /// ```text
    /// q·(b/r_d + t_rot + t_settle) + 2·g·t_seek ≤ b / r_p
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`CmsError::InvalidParams`] for `g = 0` and
    /// [`CmsError::InfeasibleConfig`] when even one stream per group does
    /// not fit.
    pub fn solve(
        disk: &DiskParams,
        block_bytes: u64,
        playback_rate: BitsPerSec,
        groups: u32,
    ) -> Result<Self, CmsError> {
        disk.validate()?;
        if groups == 0 {
            return Err(CmsError::invalid_params("GSS needs g >= 1"));
        }
        if block_bytes == 0 || playback_rate <= 0.0 {
            return Err(CmsError::invalid_params("block size and rate must be positive"));
        }
        let round = transfer_time(block_bytes, playback_rate);
        let per_block = disk.block_service_time(block_bytes);
        let seek_overhead = 2.0 * f64::from(groups) * disk.seek_worst;
        let budget = round - seek_overhead;
        if budget < per_block {
            return Err(CmsError::InfeasibleConfig {
                reason: format!(
                    "g = {groups}: seek overhead {seek_overhead:.4}s leaves no room in a \
                     {round:.4}s round"
                ),
            });
        }
        let q_raw = ((budget / per_block) * (1.0 + 1e-12)).floor() as u32;
        // Streams are dealt to groups evenly; capacity is per_group·g.
        let per_group = q_raw / groups;
        if per_group == 0 {
            return Err(CmsError::InfeasibleConfig {
                reason: format!("g = {groups}: less than one stream per group"),
            });
        }
        Ok(GssBudget {
            groups,
            q: per_group * groups,
            per_group,
            buffer_blocks_per_stream: 1.0 + 1.0 / f64::from(groups),
            round,
        })
    }

    /// Total buffer demand of a fully loaded disk, in blocks.
    #[must_use]
    pub fn buffer_blocks_total(&self) -> f64 {
        f64::from(self.q) * self.buffer_blocks_per_stream
    }

    /// Sweeps `g` from 1 to the feasibility limit and returns the point
    /// maximizing streams per disk subject to a per-disk buffer budget of
    /// `max_buffer_blocks` blocks (`None` = unconstrained, which always
    /// lands on `g = 1`, i.e. plain C-SCAN).
    ///
    /// # Errors
    ///
    /// Returns [`CmsError::InfeasibleConfig`] when no `g` fits the budget.
    pub fn optimize(
        disk: &DiskParams,
        block_bytes: u64,
        playback_rate: BitsPerSec,
        max_buffer_blocks: Option<f64>,
    ) -> Result<Self, CmsError> {
        let mut best: Option<GssBudget> = None;
        for g in 1..=64 {
            let Ok(point) = Self::solve(disk, block_bytes, playback_rate, g) else {
                break; // seek overhead only grows with g
            };
            if let Some(cap) = max_buffer_blocks {
                if point.buffer_blocks_total() > cap {
                    continue;
                }
            }
            let better = best.is_none_or(|b: GssBudget| {
                (point.q, -point.buffer_blocks_total()) > (b.q, -b.buffer_blocks_total())
            });
            if better {
                best = Some(point);
            }
        }
        best.ok_or_else(|| CmsError::InfeasibleConfig {
            reason: "no group count satisfies the buffer budget".into(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::continuity::ContinuityBudget;
    use crate::units::{kib, mbps};

    fn disk() -> DiskParams {
        DiskParams::sigmod96()
    }

    #[test]
    fn g1_matches_equation_1() {
        let eq1 = ContinuityBudget::solve(&disk(), kib(256), mbps(1.5)).unwrap();
        let gss = GssBudget::solve(&disk(), kib(256), mbps(1.5), 1).unwrap();
        assert_eq!(gss.q, eq1.q);
        assert!((gss.buffer_blocks_per_stream - 2.0).abs() < 1e-12);
    }

    #[test]
    fn more_groups_trade_streams_for_buffers() {
        let g1 = GssBudget::solve(&disk(), kib(256), mbps(1.5), 1).unwrap();
        let g4 = GssBudget::solve(&disk(), kib(256), mbps(1.5), 4).unwrap();
        let g8 = GssBudget::solve(&disk(), kib(256), mbps(1.5), 8).unwrap();
        // Capacity shrinks (more seek overhead)...
        assert!(g1.q >= g4.q && g4.q >= g8.q);
        // ... while the per-stream buffer shrinks too.
        assert!(g4.buffer_blocks_per_stream < g1.buffer_blocks_per_stream);
        assert!(g8.buffer_blocks_per_stream < g4.buffer_blocks_per_stream);
        // Total buffer demand at full load strictly improves.
        assert!(g8.buffer_blocks_total() < g1.buffer_blocks_total());
    }

    #[test]
    fn excessive_groups_become_infeasible() {
        // 2·g·t_seek eventually eats the whole round (1.398 s / 34 ms ≈ 41).
        let mut last_ok = 0;
        for g in 1..=64 {
            if GssBudget::solve(&disk(), kib(256), mbps(1.5), g).is_ok() {
                last_ok = g;
            }
        }
        assert!((8..64).contains(&last_ok), "limit at g = {last_ok}");
    }

    #[test]
    fn optimize_unconstrained_is_cscan() {
        let best = GssBudget::optimize(&disk(), kib(256), mbps(1.5), None).unwrap();
        assert_eq!(best.groups, 1, "without a buffer cap, one sweep wins");
    }

    #[test]
    fn optimize_under_buffer_pressure_raises_g() {
        let g1 = GssBudget::solve(&disk(), kib(256), mbps(1.5), 1).unwrap();
        // Cap the buffer at 70% of what g = 1 needs: the optimizer must
        // raise g (shrinking per-stream buffers) and still serve streams.
        let cap = 0.7 * g1.buffer_blocks_total();
        let best = GssBudget::optimize(&disk(), kib(256), mbps(1.5), Some(cap)).unwrap();
        assert!(best.groups > 1, "buffer pressure must raise g");
        assert!(best.buffer_blocks_total() <= cap);
        assert!(best.q > 0);
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(GssBudget::solve(&disk(), kib(256), mbps(1.5), 0).is_err());
        assert!(GssBudget::solve(&disk(), 0, mbps(1.5), 1).is_err());
        assert!(GssBudget::optimize(&disk(), kib(256), mbps(1.5), Some(0.5)).is_err());
    }
}
