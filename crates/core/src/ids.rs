//! Strongly-typed identifiers.
//!
//! The paper juggles several integer index spaces — disks, clips, client
//! requests, stripe blocks, rounds, PGT rows and sets. Mixing them up is
//! the classic way a placement algorithm silently corrupts a layout, so
//! each space gets its own newtype. All of them are `Copy`, ordered and
//! hashable so they can key `BTreeMap`s and index service lists.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $inner:ty, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
            Serialize, Deserialize,
        )]
        pub struct $name(pub $inner);

        impl $name {
            /// Returns the raw index.
            #[must_use]
            pub fn raw(self) -> $inner {
                self.0
            }

            /// Returns the raw index as `usize` for slice indexing.
            #[must_use]
            pub fn idx(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$inner> for $name {
            fn from(v: $inner) -> Self {
                Self(v)
            }
        }
    };
}

id_type!(
    /// Index of a physical disk in the array (column of the PGT).
    DiskId,
    u32,
    "disk"
);

id_type!(
    /// Index of a server node in a cluster (one complete d-disk array
    /// behind the gateway tier; see `cms-cluster`).
    NodeId,
    u32,
    "node"
);

id_type!(
    /// Identifier of a stored CM clip.
    ClipId,
    u64,
    "clip"
);

id_type!(
    /// Identifier of a client playback request (a clip may be requested by
    /// many clients concurrently).
    RequestId,
    u64,
    "req"
);

id_type!(
    /// Index of a stripe block within a clip or super-clip (0-based).
    BlockIndex,
    u64,
    "blk"
);

id_type!(
    /// A service round. Rounds have fixed duration `b / r_p` (Section 3);
    /// the simulator's clock is a round counter.
    Round,
    u64,
    "round"
);

impl Round {
    /// The round immediately after this one.
    #[must_use]
    pub fn next(self) -> Self {
        Round(self.0 + 1)
    }
}

impl DiskId {
    /// The disk holding the next stripe unit under round-robin placement
    /// over `d` disks (Section 3: "consecutive blocks for a clip are
    /// retrieved from consecutive disks").
    #[must_use]
    pub fn successor(self, d: u32) -> Self {
        debug_assert!(d > 0 && self.0 < d);
        DiskId((self.0 + 1) % d)
    }
}

impl BlockIndex {
    /// The following block of the same clip.
    #[must_use]
    pub fn next(self) -> Self {
        BlockIndex(self.0 + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn display_is_prefixed() {
        assert_eq!(DiskId(3).to_string(), "disk3");
        assert_eq!(NodeId(7).to_string(), "node7");
        assert_eq!(ClipId(12).to_string(), "clip12");
        assert_eq!(Round(0).to_string(), "round0");
    }

    #[test]
    fn successor_wraps_round_robin() {
        let d = 7;
        let mut disk = DiskId(0);
        let mut seen = BTreeSet::new();
        for _ in 0..d {
            seen.insert(disk);
            disk = disk.successor(d);
        }
        assert_eq!(seen.len(), d as usize);
        assert_eq!(disk, DiskId(0), "cycle must return to the start");
    }

    #[test]
    fn round_and_block_advance() {
        assert_eq!(Round(9).next(), Round(10));
        assert_eq!(BlockIndex(0).next(), BlockIndex(1));
    }

    #[test]
    fn ids_are_ordered_and_indexable() {
        assert!(DiskId(1) < DiskId(2));
        assert_eq!(DiskId(5).idx(), 5usize);
        assert_eq!(BlockIndex(42).raw(), 42u64);
    }

    #[test]
    fn serde_roundtrip() {
        let id = ClipId(77);
        let json = serde_json::to_string(&id).unwrap();
        assert_eq!(json, "77");
        let back: ClipId = serde_json::from_str(&json).unwrap();
        assert_eq!(back, id);
    }
}
