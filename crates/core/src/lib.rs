//! # cms-core — system model for the fault-tolerant CM server
//!
//! This crate implements Section 3 of *Fault-tolerant Architectures for
//! Continuous Media Servers* (Özden, Rastogi, Shenoy, Silberschatz,
//! SIGMOD 1996): the shared vocabulary of the whole workspace.
//!
//! It provides:
//!
//! * strongly-typed identifiers ([`DiskId`], [`ClipId`], [`Round`], …),
//! * the disk and server parameters of the paper's Figure 1
//!   ([`DiskParams`], [`ServerParams`]),
//! * the *continuity-of-playback* constraint (the paper's Equation 1) and
//!   the derived per-disk, per-round service budget `q` (see
//!   [`continuity`]),
//! * the taxonomy of fault-tolerance schemes studied by the paper
//!   ([`Scheme`]),
//! * the shared error type ([`CmsError`]).
//!
//! Everything downstream — layouts, admission control, the analytical
//! model and the simulator — is expressed in these terms.
//!
//! ```
//! use cms_core::{ContinuityBudget, DiskParams};
//! use cms_core::units::{kib, mbps};
//!
//! // How many MPEG-1 streams can one 1996 disk serve per round with
//! // 256 KiB stripe units? (Equation 1)
//! let disk = DiskParams::sigmod96();
//! let budget = ContinuityBudget::solve(&disk, kib(256), mbps(1.5)).unwrap();
//! assert_eq!(budget.q, 24);
//! assert!(budget.utilization(budget.q) <= 1.0);
//! ```

#![forbid(unsafe_code)]

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod continuity;
pub mod error;
pub mod gss;
pub mod ids;
pub mod params;
pub mod scheme;
pub mod units;

pub use continuity::{max_block_size_for_q, max_clips_per_round, round_duration, ContinuityBudget};
pub use error::CmsError;
pub use gss::GssBudget;
pub use ids::{BlockIndex, ClipId, DiskId, NodeId, RequestId, Round};
pub use params::{DiskParams, ServerParams};
pub use scheme::Scheme;
