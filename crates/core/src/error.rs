//! The workspace-wide error type.
//!
//! Kept deliberately small: configuration errors, infeasible capacity
//! math, admission rejections and layout/design construction failures
//! cover every fallible path in the workspace. `CmsError` is `Clone` so
//! the simulator can record rejection reasons in its metrics.

use std::fmt;

/// Errors produced anywhere in the CM-server workspace.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CmsError {
    /// A parameter value is structurally invalid (negative latency, p > d,
    /// zero block size, …).
    InvalidParams {
        /// Human-readable description of the violated requirement.
        reason: String,
    },
    /// The configuration is well-formed but cannot meet its guarantees
    /// (e.g. Equation 1 admits zero streams, or no BIBD-like design
    /// exists).
    InfeasibleConfig {
        /// Human-readable description of why capacity math failed.
        reason: String,
    },
    /// An admission request was rejected; the request stays in the pending
    /// list (the controllers are starvation-free, so this is a *not yet*,
    /// never a *never*).
    AdmissionRejected {
        /// Which resource was exhausted.
        reason: String,
    },
    /// A block address or id fell outside the configured array/layout.
    OutOfBounds {
        /// Description of the offending access.
        reason: String,
    },
    /// The requested combinatorial design could not be constructed exactly
    /// and no fallback was permitted.
    DesignUnavailable {
        /// Parameters of the missing design.
        reason: String,
    },
}

impl CmsError {
    /// Shorthand for [`CmsError::InvalidParams`].
    #[must_use]
    pub fn invalid_params(reason: impl Into<String>) -> Self {
        CmsError::InvalidParams { reason: reason.into() }
    }

    /// Shorthand for [`CmsError::OutOfBounds`].
    #[must_use]
    pub fn out_of_bounds(reason: impl Into<String>) -> Self {
        CmsError::OutOfBounds { reason: reason.into() }
    }

    /// Shorthand for [`CmsError::AdmissionRejected`].
    #[must_use]
    pub fn rejected(reason: impl Into<String>) -> Self {
        CmsError::AdmissionRejected { reason: reason.into() }
    }
}

impl fmt::Display for CmsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CmsError::InvalidParams { reason } => write!(f, "invalid parameters: {reason}"),
            CmsError::InfeasibleConfig { reason } => write!(f, "infeasible configuration: {reason}"),
            CmsError::AdmissionRejected { reason } => write!(f, "admission rejected: {reason}"),
            CmsError::OutOfBounds { reason } => write!(f, "out of bounds: {reason}"),
            CmsError::DesignUnavailable { reason } => write!(f, "design unavailable: {reason}"),
        }
    }
}

impl std::error::Error for CmsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_reason() {
        let e = CmsError::invalid_params("p > d");
        assert_eq!(e.to_string(), "invalid parameters: p > d");
        let e = CmsError::InfeasibleConfig { reason: "q = 0".into() };
        assert!(e.to_string().contains("q = 0"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(CmsError::rejected("full"), CmsError::rejected("full"));
        assert_ne!(CmsError::rejected("full"), CmsError::rejected("row full"));
    }

    #[test]
    fn error_trait_object_works() {
        let e: Box<dyn std::error::Error> = Box::new(CmsError::out_of_bounds("disk 99"));
        assert!(e.to_string().contains("disk 99"));
    }
}
