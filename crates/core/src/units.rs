//! Physical units used throughout the workspace.
//!
//! The paper quotes disk rates in megabits per second and buffer sizes in
//! megabytes/gigabytes. Internally everything is carried as:
//!
//! * **time** — `f64` seconds,
//! * **data rates** — `f64` bits per second,
//! * **sizes** — `u64` bytes.
//!
//! The helpers here keep those conversions in one audited place; unit bugs
//! in admission-control math silently destroy rate guarantees, so no module
//! is allowed to do its own `* 1024` arithmetic.

/// A duration in seconds.
pub type Seconds = f64;

/// A data rate in bits per second.
pub type BitsPerSec = f64;

/// Number of bits in one byte.
pub const BITS_PER_BYTE: f64 = 8.0;

/// Converts megabits per second (as quoted by the paper, decimal mega) to
/// bits per second.
#[must_use]
pub fn mbps(megabits_per_second: f64) -> BitsPerSec {
    megabits_per_second * 1_000_000.0
}

/// Converts milliseconds to seconds.
#[must_use]
pub fn millis(ms: f64) -> Seconds {
    ms / 1_000.0
}

/// Converts binary kibibytes to bytes.
#[must_use]
pub fn kib(k: u64) -> u64 {
    k * 1024
}

/// Converts binary mebibytes to bytes (the paper's "MB").
#[must_use]
pub fn mib(m: u64) -> u64 {
    m * 1024 * 1024
}

/// Converts binary gibibytes to bytes (the paper's "GB").
#[must_use]
pub fn gib(g: u64) -> u64 {
    g * 1024 * 1024 * 1024
}

/// Time in seconds needed to move `bytes` bytes at `rate` bits per second.
///
/// This is the `b / r_d` and `b / r_p` term that appears throughout the
/// paper's Equation 1 and Section 7 constraints.
#[must_use]
pub fn transfer_time(bytes: u64, rate: BitsPerSec) -> Seconds {
    debug_assert!(rate > 0.0, "transfer rate must be positive");
    (bytes as f64) * BITS_PER_BYTE / rate
}

/// Number of whole bytes that can be moved in `seconds` at `rate` bits per
/// second (floor).
#[must_use]
pub fn bytes_in(seconds: Seconds, rate: BitsPerSec) -> u64 {
    debug_assert!(seconds >= 0.0 && rate >= 0.0);
    (seconds * rate / BITS_PER_BYTE).floor() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mbps_is_decimal_mega() {
        assert_eq!(mbps(1.5), 1_500_000.0);
        assert_eq!(mbps(45.0), 45_000_000.0);
    }

    #[test]
    fn millis_converts() {
        assert!((millis(17.0) - 0.017).abs() < 1e-12);
    }

    #[test]
    fn binary_sizes() {
        assert_eq!(kib(1), 1024);
        assert_eq!(mib(1), 1 << 20);
        assert_eq!(gib(2), 2 << 30);
    }

    #[test]
    fn transfer_time_matches_hand_calc() {
        // 64 KiB at 45 Mbps: 65536*8/45e6 s ≈ 11.65 ms.
        let t = transfer_time(kib(64), mbps(45.0));
        assert!((t - 0.011_650_8).abs() < 1e-5, "got {t}");
    }

    #[test]
    fn transfer_time_roundtrips_with_bytes_in() {
        let bytes = kib(256);
        let rate = mbps(45.0);
        let t = transfer_time(bytes, rate);
        assert_eq!(bytes_in(t, rate), bytes);
    }

    #[test]
    fn zero_bytes_takes_zero_time() {
        assert_eq!(transfer_time(0, mbps(45.0)), 0.0);
    }
}
