//! Cross-crate integration: the full server stack (design → layout →
//! admission → simulation → parity) under playback, overload and failure,
//! for every scheme.

use cms_core::{ClipId, DiskId, Scheme};
use cms_server::CmServer;

fn server(scheme: Scheme, disks: u32, buffer_mb: u64) -> CmServer {
    CmServer::builder(scheme)
        .disks(disks)
        .buffer_bytes(buffer_mb << 20)
        .catalog(60, 25)
        .verify_reconstructions()
        .seed(11)
        .build()
        .expect("feasible configuration")
}

#[test]
fn every_scheme_survives_failure_at_every_phase_of_playback() {
    // Fail the disk early, mid and late in the playback of a cohort; the
    // guarantee must hold regardless of where the streams are.
    for scheme in Scheme::ALL {
        if scheme == Scheme::NonClustered {
            continue; // exercised separately; it is allowed to glitch
        }
        for fail_at in [2u64, 12, 20] {
            let mut s = server(scheme, 8, 96);
            for c in 0..16u64 {
                s.request(ClipId(c)).unwrap();
            }
            s.run_rounds(fail_at);
            s.fail_disk(DiskId(1)).unwrap();
            s.run_rounds(120);
            let m = s.metrics();
            assert_eq!(m.completed, 16, "{scheme} fail@{fail_at}");
            assert_eq!(m.hiccups, 0, "{scheme} fail@{fail_at}");
            assert_eq!(m.parity_mismatches, 0, "{scheme} fail@{fail_at}");
        }
    }
}

#[test]
fn failure_of_each_disk_is_survivable() {
    // Declustering means no disk is special: kill each one in turn.
    for disk in 0..8u32 {
        let mut s = server(Scheme::DeclusteredParity, 8, 96);
        for c in 0..16u64 {
            s.request(ClipId(c)).unwrap();
        }
        s.run_rounds(5);
        s.fail_disk(DiskId(disk)).unwrap();
        s.run_rounds(120);
        let m = s.metrics();
        assert_eq!(m.completed, 16, "disk {disk}");
        assert!(m.guarantees_held(), "disk {disk}");
    }
}

#[test]
fn staggered_requests_and_replays() {
    // Requests trickling in over time, some for the same clip
    // concurrently (two clients watching one movie).
    let mut s = server(Scheme::PrefetchFlat, 8, 96);
    for _wave in 0..5u64 {
        for c in 0..6u64 {
            s.request(ClipId(c)).unwrap(); // same six clips every wave
        }
        s.run_rounds(7);
    }
    s.run_rounds(150);
    let m = s.metrics();
    assert_eq!(m.completed, 30);
    assert_eq!(m.hiccups, 0);
}

#[test]
fn failure_with_queued_backlog() {
    // A disk dies while a backlog is waiting: admissions must continue
    // (contingency was reserved up front, so capacity is unchanged).
    let mut s = server(Scheme::DynamicReservation, 8, 96);
    for i in 0..80u64 {
        s.request(ClipId(i % 60)).unwrap();
    }
    s.run_rounds(4);
    let before = s.metrics().admitted;
    s.fail_disk(DiskId(2)).unwrap();
    s.run_rounds(60);
    let after = s.metrics().admitted;
    assert!(after > before, "admissions must continue during the failure");
    s.run_rounds(400);
    let m = s.metrics();
    assert_eq!(m.completed, 80);
    assert!(m.guarantees_held());
}

#[test]
fn repair_stops_recovery_traffic() {
    let mut s = server(Scheme::DeclusteredParity, 8, 96);
    for c in 0..12u64 {
        s.request(ClipId(c)).unwrap();
    }
    s.run_rounds(3);
    s.fail_disk(DiskId(0)).unwrap();
    s.run_rounds(10);
    s.repair_disk(DiskId(0)).unwrap();
    let recovery_at_repair = s.metrics().recovery_reads;
    s.run_rounds(80);
    let m = s.metrics();
    assert_eq!(
        m.recovery_reads, recovery_at_repair,
        "no recovery reads after repair"
    );
    assert_eq!(m.completed, 12);
    assert!(m.guarantees_held());
}

#[test]
fn larger_array_scales_capacity() {
    let small = server(Scheme::PrefetchParityDisks, 8, 96);
    let large = CmServer::builder(Scheme::PrefetchParityDisks)
        .disks(16)
        .buffer_bytes(192 << 20)
        .catalog(60, 25)
        .build()
        .unwrap();
    assert!(
        large.capacity().total_clips > small.capacity().total_clips,
        "double the hardware must serve more streams"
    );
}

#[test]
fn flat_scheme_survives_failure_at_saturation_long_run() {
    // The flat scheme's parity classes drift slowly across fetch cycles
    // (cms-admission::flat docs); the prefetch deadline window must absorb
    // the transient — checked here at full paper scale, saturated, with a
    // failure held for hundreds of rounds and byte verification on.
    use cms_core::DiskId as D;
    use cms_model::{tuned_point, ModelInput};
    use cms_sim::{SimConfig, Simulator};
    let input = ModelInput::sigmod96(256 << 20).with_storage_blocks(75_000);
    let point = tuned_point(Scheme::PrefetchFlat, &input, 4, 3).unwrap();
    let mut cfg = SimConfig::sigmod96(Scheme::PrefetchFlat, &point, 32)
        .with_failure(120, D(9))
        .with_verification();
    cfg.rounds = 450;
    let m = Simulator::new(cfg).unwrap().run();
    assert!(m.admitted > 1000, "must be saturated");
    assert!(m.reconstructions > 100, "failure must bite");
    assert_eq!(m.hiccups, 0, "drift must be absorbed by the prefetch window");
    assert_eq!(m.parity_mismatches, 0);
}

#[test]
fn non_clustered_breaks_only_under_pressure() {
    // Lightly loaded: even the non-clustered baseline survives a failure.
    let mut s = server(Scheme::NonClustered, 8, 96);
    for c in 0..6u64 {
        s.request(ClipId(c)).unwrap();
    }
    s.run_rounds(5);
    s.fail_disk(DiskId(1)).unwrap();
    s.run_rounds(120);
    assert_eq!(s.metrics().hiccups, 0, "light load: no glitches expected");

    // Saturated: the §7.4 caveat materializes.
    let mut s = server(Scheme::NonClustered, 8, 96);
    let burst = 3 * u64::from(s.capacity().total_clips);
    for i in 0..burst {
        s.request(ClipId(i % 60)).unwrap();
    }
    s.run_rounds(20);
    s.fail_disk(DiskId(1)).unwrap();
    s.run_rounds(100);
    assert!(
        s.metrics().hiccups > 0,
        "saturated non-clustered must glitch on failure"
    );
    // ... but reconstruction content stays correct even while late.
    assert_eq!(s.metrics().parity_mismatches, 0);
}
