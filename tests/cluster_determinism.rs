//! Cluster-tier determinism replay: a 64-node campaign with node
//! failures, stream migration and cross-node rebuild must produce
//! bit-identical cluster metrics, per-node metrics, round reports AND
//! JSONL trace bytes at every worker-thread count.
//!
//! The cluster applies the same determinism contract one tier up from
//! the engine: the node is the unit of parallelism, scoped workers step
//! disjoint node slices, and all merging (metrics roll-up, trace
//! emission) happens sequentially in node-ID order. Thread count is a
//! wall-clock knob only.

use cms_cluster::{ClusterConfig, ClusterRun, ClusterSim};
use cms_core::Scheme;
use cms_fault::FaultSchedule;
use cms_model::CapacityPoint;
use cms_sim::SimConfig;
use cms_trace::{JsonlSink, SharedBuffer, TraceSpec};

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// 64 nodes × ~10k gateway streams with two node-failure/repair cycles.
fn campaign_cfg() -> ClusterConfig {
    let point = CapacityPoint {
        scheme: Scheme::DeclusteredParity,
        p: 4,
        m: 1,
        block_bytes: 1 << 20,
        q: 8,
        f: 2,
        r: 1,
        total_clips: 64,
    };
    let mut node = SimConfig::sigmod96(Scheme::DeclusteredParity, &point, 4);
    node.arrival_rate = 0.0; // the gateway generates all arrivals
    node.clip_len = 12;
    node.clip_len_spread = 0;
    let faults = FaultSchedule::parse(
        "@40 fail-node 7\n@50 fail-node 23\n@70 repair-node 7\n@80 repair-node 23\n",
    )
    .expect("schedule parses");
    ClusterConfig {
        nodes: 64,
        replication: 2,
        catalog_clips: 512,
        node,
        arrival_rate: 110.0,
        zipf_theta: 0.7,
        rounds: 100,
        rebuild_rate: 64,
        rebuild_fanout: 4,
        faults: Some(faults),
        seed: 0x0C10_57E2,
        threads: 1,
        trace: TraceSpec::off(),
    }
}

/// Runs the campaign at `threads` workers, capturing the JSONL trace.
fn run(threads: usize) -> (ClusterRun, Vec<u8>) {
    let mut sim = ClusterSim::new(campaign_cfg().with_threads(threads)).expect("constructs");
    let buf = SharedBuffer::new();
    sim.set_trace_sink(Box::new(JsonlSink::new(buf.clone())));
    let run = sim.run();
    (run, buf.contents())
}

#[test]
fn cluster_campaign_replays_bit_identical_at_any_thread_count() {
    let (base, base_trace) = run(1);

    // The campaign must be substantial: ~10k streams over 64 nodes with
    // real migration and rebuild traffic, not a degenerate no-op.
    let m = &base.metrics;
    assert!(m.arrivals >= 10_000, "need ~10k streams, got {}", m.arrivals);
    assert_eq!(m.arrivals, m.routed + m.cluster_refusals + m.unroutable);
    assert_eq!(m.node_failures, 2, "two fail-node events applied");
    assert_eq!(m.node_repairs, 2);
    assert!(m.migrations > 0, "failing nodes carried streams to migrate");
    assert_eq!(m.lost_streams, 0, "r=2 survives single concurrent-per-clip failures");
    assert_eq!(m.hiccups, 0, "rate guarantees hold through node failures");
    assert_eq!(m.node_rebuilds_completed, 2, "both rebuilds finish in-window");
    assert!(m.cross_node_rebuild_blocks > 0);
    assert!(!base_trace.is_empty(), "tracing was on");

    // Conservation across tiers: every routed or migrated stream arrived
    // at exactly one node engine.
    let node_arrivals: u64 = base.node_metrics.iter().map(|n| n.arrivals).sum();
    assert_eq!(node_arrivals, m.routed + m.migrations);

    for threads in THREAD_COUNTS {
        let (other, other_trace) = run(threads);
        let label = format!("{threads} threads");
        assert_eq!(base.metrics, other.metrics, "{label}: cluster metrics");
        assert_eq!(base.reports, other.reports, "{label}: per-round reports");
        assert_eq!(
            base.node_metrics.len(),
            other.node_metrics.len(),
            "{label}: node count"
        );
        for (id, (a, b)) in base.node_metrics.iter().zip(&other.node_metrics).enumerate() {
            assert_eq!(a, b, "{label}: node {id} engine metrics");
        }
        assert_eq!(
            base_trace, other_trace,
            "{label}: JSONL trace bytes must be identical"
        );
    }
}

#[test]
fn auto_worker_count_matches_sequential() {
    // threads = 0 resolves to available parallelism — whatever the
    // machine offers, the run must equal the sequential one.
    let (base, base_trace) = run(1);
    let (auto, auto_trace) = run(0);
    assert_eq!(base.metrics, auto.metrics, "auto workers: cluster metrics");
    assert_eq!(base.reports, auto.reports, "auto workers: reports");
    assert_eq!(base.node_metrics, auto.node_metrics, "auto workers: node metrics");
    assert_eq!(base_trace, auto_trace, "auto workers: trace bytes");
}
