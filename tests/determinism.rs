//! Cross-thread determinism replay: the same seeded configuration must
//! produce bit-identical [`Metrics`] at every disk-service thread count.
//!
//! The parallel round engine computes each disk's service locally and
//! merges per-disk accounting in disk-ID order (DESIGN.md's determinism
//! contract), so thread count is purely a wall-clock knob. These tests
//! replay identical runs at 1, 2 and 8 threads — fault-free, through a
//! mid-run disk failure, and with background rebuild — and compare every
//! metric field, including the per-disk float accumulations that would
//! drift first if merge order ever depended on scheduling.

use cms_core::{DiskId, Scheme};
use cms_model::{tuned_point, ModelInput};
use cms_sim::{Metrics, SimConfig, Simulator};

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn paper_cfg(scheme: Scheme, seed: u64) -> SimConfig {
    let input = ModelInput::sigmod96(256 << 20).with_storage_blocks(75_000);
    let point = tuned_point(scheme, &input, 4, seed).expect("feasible");
    let mut cfg = SimConfig::sigmod96(scheme, &point, 32);
    cfg.rounds = 150;
    cfg.seed = seed;
    cfg
}

fn run(cfg: SimConfig) -> Metrics {
    Simulator::new(cfg).expect("constructs").run()
}

/// Field-for-field comparison with a per-field failure message; the
/// blanket `PartialEq` check alone would not say *which* metric diverged.
fn assert_identical(base: &Metrics, other: &Metrics, label: &str) {
    assert_eq!(base.rounds, other.rounds, "{label}: rounds");
    assert_eq!(base.arrivals, other.arrivals, "{label}: arrivals");
    assert_eq!(base.admitted, other.admitted, "{label}: admitted (clips serviced)");
    assert_eq!(base.completed, other.completed, "{label}: completed");
    assert_eq!(base.still_pending, other.still_pending, "{label}: still_pending");
    assert_eq!(base.wait_rounds_total, other.wait_rounds_total, "{label}: wait_rounds_total");
    assert_eq!(base.wait_rounds_max, other.wait_rounds_max, "{label}: wait_rounds_max");
    assert_eq!(base.blocks_consumed, other.blocks_consumed, "{label}: blocks_consumed");
    assert_eq!(base.blocks_fetched, other.blocks_fetched, "{label}: blocks_fetched");
    assert_eq!(base.recovery_reads, other.recovery_reads, "{label}: recovery_reads");
    assert_eq!(base.reconstructions, other.reconstructions, "{label}: reconstructions");
    assert_eq!(base.parity_mismatches, other.parity_mismatches, "{label}: parity_mismatches");
    assert_eq!(base.hiccups, other.hiccups, "{label}: hiccups");
    assert_eq!(base.late_serves, other.late_serves, "{label}: late_serves");
    assert_eq!(base.service_errors, other.service_errors, "{label}: service_errors");
    assert_eq!(base.peak_disk_queue, other.peak_disk_queue, "{label}: peak_disk_queue");
    assert_eq!(
        base.peak_buffered_blocks, other.peak_buffered_blocks,
        "{label}: peak_buffered_blocks"
    );
    assert_eq!(
        base.peak_utilization.to_bits(),
        other.peak_utilization.to_bits(),
        "{label}: peak_utilization must be bit-identical"
    );
    assert_eq!(base.peak_active, other.peak_active, "{label}: peak_active");
    assert_eq!(base.rebuild_reads, other.rebuild_reads, "{label}: rebuild_reads");
    assert_eq!(base.rebuilt_blocks, other.rebuilt_blocks, "{label}: rebuilt_blocks");
    assert_eq!(
        base.rebuild_completed_round, other.rebuild_completed_round,
        "{label}: rebuild_completed_round"
    );
    assert_eq!(base.lost_streams, other.lost_streams, "{label}: lost_streams");
    assert_eq!(base.degraded_refusals, other.degraded_refusals, "{label}: degraded_refusals");
    assert_eq!(
        base.unrecoverable_blocks, other.unrecoverable_blocks,
        "{label}: unrecoverable_blocks"
    );
    assert_eq!(base.wait_histogram, other.wait_histogram, "{label}: wait_histogram");
    assert_eq!(base.disk_blocks, other.disk_blocks, "{label}: disk_blocks");
    assert_eq!(
        base.disk_recovery_reads, other.disk_recovery_reads,
        "{label}: disk_recovery_reads"
    );
    assert_eq!(base.disk_rebuild_reads, other.disk_rebuild_reads, "{label}: disk_rebuild_reads");
    assert_eq!(base.disk_busy.len(), other.disk_busy.len(), "{label}: disk_busy length");
    for (disk, (a, b)) in base.disk_busy.iter().zip(&other.disk_busy).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{label}: disk {disk} busy time must be bit-identical ({a} vs {b})"
        );
    }
    // Belt and braces: the blanket comparison must agree.
    assert_eq!(base, other, "{label}: full Metrics");
}

#[test]
fn fault_free_replay_is_identical_at_any_thread_count() {
    for scheme in [Scheme::DeclusteredParity, Scheme::PrefetchFlat, Scheme::StreamingRaid] {
        let base = run(paper_cfg(scheme, 0xD0_0DE).with_threads(1));
        assert!(base.admitted > 0, "{scheme}: run must do real work");
        for threads in THREAD_COUNTS {
            let m = run(paper_cfg(scheme, 0xD0_0DE).with_threads(threads));
            assert_identical(&base, &m, &format!("{scheme} fault-free, {threads} threads"));
        }
    }
}

#[test]
fn failure_replay_is_identical_at_any_thread_count() {
    let cfg = |threads| {
        paper_cfg(Scheme::DeclusteredParity, 0xFA_11ED)
            .with_failure(40, DiskId(5))
            .with_verification()
            .with_threads(threads)
    };
    let base = run(cfg(1));
    assert!(base.reconstructions > 0, "failure must force reconstructions");
    for threads in THREAD_COUNTS {
        let m = run(cfg(threads));
        assert_identical(&base, &m, &format!("mid-run failure, {threads} threads"));
    }
}

#[test]
fn rebuild_replay_is_identical_at_any_thread_count() {
    // Background rebuild consumes per-disk slack computed from the same
    // service pass, so it is the metric most sensitive to any accounting
    // reorder.
    let cfg = |threads| {
        let mut c = paper_cfg(Scheme::DeclusteredParity, 0x2EB_111D)
            .with_failure(30, DiskId(2))
            .with_rebuild()
            .with_threads(threads);
        c.catalog_clips = 200; // small library so the rebuild progresses
        c
    };
    let base = run(cfg(1));
    assert!(base.rebuild_reads > 0, "rebuild must issue reads");
    for threads in THREAD_COUNTS {
        let m = run(cfg(threads));
        assert_identical(&base, &m, &format!("background rebuild, {threads} threads"));
    }
}

#[test]
fn fault_schedule_replay_is_identical_at_any_thread_count() {
    // A full multi-event campaign — transient outage, hard failure with
    // background rebuild, slow-disk window, repair — under degraded-mode
    // admission. Every fault path (strand/recovery/rebuild/refusal) must
    // merge deterministically.
    let cfg = |threads| {
        let faults = cms_sim::FaultSchedule::parse(
            "@20 transient 3 rounds=8\n@40 fail 5\n@60 slow 7 factor=3 rounds=12\n@90 repair 5\n",
        )
        .expect("schedule parses");
        let mut c = paper_cfg(Scheme::DeclusteredParity, 0xFA_5C4D)
            .with_faults(faults)
            .with_degraded_admission()
            .with_rebuild()
            .with_verification()
            .with_threads(threads);
        c.catalog_clips = 200;
        c
    };
    let base = run(cfg(1));
    assert!(base.recovery_reads > 0, "the schedule must force recovery");
    for threads in THREAD_COUNTS {
        let m = run(cfg(threads));
        assert_identical(&base, &m, &format!("fault schedule, {threads} threads"));
    }
}

#[test]
fn auto_thread_count_matches_sequential() {
    // threads = 0 resolves to the machine's available parallelism —
    // whatever that is, the result must equal the sequential run.
    let base = run(paper_cfg(Scheme::DynamicReservation, 0xA0_70).with_threads(1));
    let auto = run(paper_cfg(Scheme::DynamicReservation, 0xA0_70).with_threads(0));
    assert_identical(&base, &auto, "auto thread count");
}
