//! Cross-crate property-based tests: random dimensions, random failure
//! scenarios, random workloads — the invariants must hold everywhere, not
//! just at the paper's evaluation points.

use cms_bibd::{best_design, DesignRequest, Pgt};
use cms_core::units::mbps;
use cms_core::{ClipId, ContinuityBudget, DiskId, DiskParams, Scheme};
use cms_layout::{clustered, declustered, flat, Slot, StreamAddr};
use cms_server::CmServer;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any (v, k) in range yields a design with equal replication, and
    /// its PGT's reconstruction overlap is bounded by the design's λ_max.
    #[test]
    fn design_and_pgt_invariants(v in 4u32..24, k_off in 0u32..6, seed in 0u64..1000) {
        let k = 3 + k_off % (v - 2).max(1);
        prop_assume!(k >= 3 && k <= v);
        let design = best_design(DesignRequest { v, k, allow_fallback: true, seed })
            .expect("fallback always exists for k >= 3");
        let stats = design.stats();
        prop_assert!(stats.equal_replication());
        let pgt = Pgt::new(&design);
        for i in 0..v {
            for j in 0..v {
                prop_assert!(pgt.reconstruction_overlap(i, j) <= stats.lambda_max);
            }
        }
    }

    /// The declustered layout always produces recoverable blocks: the
    /// reconstruction reads of any block land on pairwise-distinct disks,
    /// none of them the block's own disk.
    #[test]
    fn declustered_blocks_are_recoverable(
        v in 5u32..16,
        k in 3u32..6,
        blocks in 20u64..200,
        seed in 0u64..100,
    ) {
        prop_assume!(k <= v);
        let design = best_design(DesignRequest { v, k, allow_fallback: true, seed }).unwrap();
        let layout = declustered::build(&Pgt::new(&design), blocks).unwrap();
        for i in 0..blocks {
            let addr = StreamAddr::new(0, i);
            let own = layout.locate(addr).disk;
            let reads = layout.reconstruction_reads(addr);
            prop_assert!(!reads.is_empty(), "block {i} must have survivors");
            let mut disks: Vec<_> = reads.iter().map(|l| l.disk).collect();
            prop_assert!(!disks.contains(&own));
            disks.sort();
            let n = disks.len();
            disks.dedup();
            prop_assert_eq!(disks.len(), n, "survivor disks must be distinct");
        }
    }

    /// Clustered and flat layouts keep parity off their groups' data
    /// disks for arbitrary sizes.
    #[test]
    fn parity_placement_never_collides(
        clusters in 2u32..6,
        p in 2u32..6,
        rows in 2u64..20,
    ) {
        let d = clusters * p;
        let n = u64::from(d - clusters) * rows;
        let layout = clustered::build(Scheme::PrefetchParityDisks, d, p, n).unwrap();
        for gid in 0..layout.num_groups() {
            let g = layout.group(gid);
            for &a in &g.data {
                prop_assert_ne!(layout.locate(a).disk, g.parity.disk);
            }
        }
        let layout = flat::build(d, p.min(d - 1).max(2), u64::from(d) * rows).unwrap();
        for gid in 0..layout.num_groups() {
            let g = layout.group(gid);
            for &a in &g.data {
                prop_assert_ne!(layout.locate(a).disk, g.parity.disk);
            }
        }
    }

    /// Equation 1 is exactly the admission boundary: q admits, q+1 does
    /// not, across arbitrary block sizes.
    #[test]
    fn continuity_budget_is_tight(kb in 24u64..4096) {
        let disk = DiskParams::sigmod96();
        if let Ok(budget) = ContinuityBudget::solve(&disk, kb * 1024, mbps(1.5)) {
            prop_assert!(budget.busy_time(budget.q) <= budget.round + 1e-9);
            prop_assert!(budget.busy_time(budget.q + 1) > budget.round);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The headline guarantee, fuzzed: random scheme, random failure
    /// round, random failed disk, random request pattern — zero hiccups,
    /// zero parity mismatches, all clips complete.
    #[test]
    fn rate_guarantees_hold_under_random_failures(
        scheme_idx in 0usize..5,
        fail_round in 1u64..30,
        disk in 0u32..8,
        request_seed in 0u64..50,
    ) {
        let scheme = [
            Scheme::DeclusteredParity,
            Scheme::DynamicReservation,
            Scheme::PrefetchParityDisks,
            Scheme::PrefetchFlat,
            Scheme::StreamingRaid,
        ][scheme_idx];
        let mut server = CmServer::builder(scheme)
            .disks(8)
            .buffer_bytes(64 << 20)
            .catalog(40, 20)
            .verify_reconstructions()
            .seed(request_seed)
            .build()
            .unwrap();
        for i in 0..14u64 {
            server.request(ClipId((i * 7 + request_seed) % 40)).unwrap();
        }
        server.run_rounds(fail_round);
        server.fail_disk(DiskId(disk)).unwrap();
        server.run_rounds(120);
        let m = server.metrics();
        prop_assert_eq!(m.completed, 14);
        prop_assert_eq!(m.hiccups, 0, "{} failed at round {}", scheme, fail_round);
        prop_assert_eq!(m.parity_mismatches, 0);
    }
}

/// Non-proptest sweep: the layout slot tables and stream maps agree for
/// every scheme at a paper-like size (the MaterializedLayout invariant
/// checker runs inside `build`; this exercises it at scale).
#[test]
fn layouts_build_at_paper_scale() {
    let design = best_design(DesignRequest::new(32, 8)).unwrap();
    let pgt = Pgt::new(&design);
    let layout = declustered::build(&pgt, 50_000).unwrap();
    assert_eq!(layout.total_data_blocks(), 50_000);
    let layout = declustered::build_super_clips(&pgt, 10_000).unwrap();
    assert_eq!(layout.num_streams(), pgt.rows());
    let layout = clustered::build(Scheme::StreamingRaid, 32, 8, 50_000).unwrap();
    assert_eq!(layout.total_data_blocks(), 50_000);
    let layout = flat::build(32, 8, 50_000).unwrap();
    // All 32 disks carry both data and parity in the flat scheme.
    for disk in 0..32 {
        let used = layout.blocks_used(DiskId(disk));
        let has_parity = (0..used)
            .any(|b| matches!(layout.slot(DiskId(disk), b), Slot::Parity(_)));
        assert!(has_parity, "disk {disk} must hold parity");
    }
}
