//! Fault-schedule campaign scenarios as a scheme-differential test
//! harness.
//!
//! Three layers of defence around the fault model:
//!
//! 1. **Golden**: the full campaign sweep regenerated here must match
//!    the committed JSONL byte-for-byte, so any behavioural drift in the
//!    fault paths shows up as a reviewable golden diff.
//! 2. **Differential**: the paper's §4.1 / §6.1 contrast — declustered
//!    parity spreads rebuild work across many survivors while clustered
//!    parity concentrates it inside the failed disk's cluster — checked
//!    from per-disk rebuild-read counters, not from prose.
//! 3. **Invariant**: property tests that a down disk (failed or in a
//!    transient outage window) serves nothing, under randomized
//!    schedules, schemes and seeds.

use std::sync::OnceLock;

use cms_bench::campaign::{campaign_config, to_jsonl};
use cms_bench::{campaign_rows, CampaignRow, CAMPAIGN_SCHEMES, SCENARIOS};
use cms_core::Scheme;
use cms_sim::{FaultSchedule, SimConfig, Simulator};
use proptest::prelude::*;

/// The sweep the golden was generated from: default rounds and seed, one
/// run per (scenario, scheme). Shared across tests via `OnceLock` so the
/// binary pays for the 15 simulations once.
fn sweep() -> &'static [CampaignRow] {
    static ROWS: OnceLock<Vec<CampaignRow>> = OnceLock::new();
    ROWS.get_or_init(|| campaign_rows(120, 7, 0, 1, None))
}

/// The row for one (scenario, scheme) cell of the sweep.
fn row(scenario: &str, scheme: Scheme) -> &'static CampaignRow {
    sweep()
        .iter()
        .find(|r| r.scenario == scenario && r.scheme == scheme)
        .unwrap_or_else(|| panic!("no campaign row for {scenario}/{scheme}"))
}

#[test]
fn campaign_sweep_matches_committed_golden() {
    let golden = include_str!("../crates/bench/goldens/campaign.jsonl");
    let regenerated = to_jsonl(sweep());
    for (i, (want, got)) in golden.lines().zip(regenerated.lines()).enumerate() {
        assert_eq!(
            want, got,
            "campaign row {i} drifted from the golden; if intentional, regenerate with \
             `cargo run --release -p cms-bench --bin campaign -- --out crates/bench/goldens/campaign.jsonl`"
        );
    }
    assert_eq!(golden, regenerated, "golden and regenerated sweeps differ in length");
}

#[test]
fn single_failure_degraded_cap_refuses_under_overload() {
    // The scenario overloads the array (arrival 20/round) with one disk
    // down and degraded-mode admission on: every scheme must refuse some
    // arrivals rather than over-admit, and no stream may be lost — a
    // single failure is always survivable (or, for the no-redundancy
    // baseline, merely glitchy, never "lost" by the parity-group rule).
    for scheme in CAMPAIGN_SCHEMES {
        let r = row("single_failure", scheme);
        assert!(r.degraded_refusals > 0, "{scheme}: cap never bit");
        assert_eq!(r.lost_streams, 0, "{scheme}: single failure cannot lose streams");
        assert!(r.completed > 0, "{scheme}: degraded mode must still make progress");
    }
    // The redundancy differential: parity schemes mask the failure
    // (recovery reads, zero glitches); the baseline glitches instead.
    for scheme in [Scheme::DeclusteredParity, Scheme::PrefetchParityDisks] {
        let r = row("single_failure", scheme);
        assert!(r.recovery_reads > 0, "{scheme}: masking requires recovery reads");
        assert!(r.guarantees_held && r.hiccups == 0, "{scheme}: one failure must be masked");
    }
    let bare = row("single_failure", Scheme::NonClustered);
    assert!(bare.hiccups > 0 && !bare.guarantees_held, "no redundancy, no masking");
}

#[test]
fn transient_blip_is_invisible_under_parity() {
    // A 10-round controller blip: parity schemes reconstruct through the
    // window and stay glitch-free; the unprotected baseline hiccups.
    for scheme in [Scheme::DeclusteredParity, Scheme::PrefetchParityDisks] {
        let r = row("transient_blip", scheme);
        assert!(r.guarantees_held, "{scheme}: blip must be masked");
        assert_eq!(r.hiccups, 0, "{scheme}: blip must not glitch");
        assert!(r.recovery_reads > 0, "{scheme}: masking requires recovery reads");
        assert_eq!(r.lost_streams, 0, "{scheme}: blips never lose streams");
    }
    let bare = row("transient_blip", Scheme::NonClustered);
    assert!(bare.hiccups > 0, "the baseline cannot mask an outage window");
    assert_eq!(bare.lost_streams, 0, "transient windows never declare loss");
}

#[test]
fn same_group_double_failure_loses_streams_deterministically() {
    // Disks 1 and 3 share parity groups in every campaign placement, so
    // the second failure must declare the over-struck streams lost — on
    // every scheme, deterministically, rather than letting them starve.
    for scheme in CAMPAIGN_SCHEMES {
        let r = row("double_failure_same_group", scheme);
        assert!(r.lost_streams > 0, "{scheme}: double failure must declare losses");
        assert!(r.completed > 0, "{scheme}: unaffected streams must still finish");
    }
}

#[test]
fn second_failure_during_rebuild_leaves_holes_but_completes() {
    // Losing a rebuild source mid-rebuild abandons exactly the blocks
    // whose groups were over-struck; the rebuild still finishes the rest.
    for scheme in [Scheme::DeclusteredParity, Scheme::PrefetchParityDisks] {
        let r = row("fail_during_rebuild", scheme);
        assert!(r.rebuild_reads > 0, "{scheme}: rebuild must run");
        assert!(r.unrecoverable_blocks > 0, "{scheme}: the second failure must punch holes");
        assert!(
            r.rebuild_completed_round.is_some(),
            "{scheme}: rebuild must complete around the holes"
        );
    }
}

#[test]
fn double_disk_failure_is_fatal_for_xor_but_masked_by_rs2() {
    // The multi-failure differential pair: the same two-disk loss inside
    // one cluster, under single XOR parity and under GF(256) RS(k, 2).
    // XOR cannot decode two erasures per group — streams are lost and
    // the rebuild punches counted holes. RS(k, 2) decodes both, so
    // nothing is lost, nothing glitches, and (with `verify_parity` on in
    // every campaign run) every reconstruction byte-verifies against the
    // Reed–Solomon codec.
    let xor = row("double_disk_failure", Scheme::PrefetchParityDisks);
    assert_eq!(xor.m, 1);
    assert!(xor.lost_streams > 0, "XOR must lose streams under a double failure");
    assert!(xor.unrecoverable_blocks > 0, "the XOR rebuild must punch holes");

    let rs = row("double_disk_failure_rs2", Scheme::PrefetchParityDisks);
    assert_eq!(rs.m, 2);
    assert_eq!(rs.lost_streams, 0, "RS(k, 2) must mask the double failure");
    assert_eq!(rs.unrecoverable_blocks, 0, "RS(k, 2) rebuild leaves no holes");
    assert_eq!(rs.hiccups, 0, "RS(k, 2) must stay glitch-free");
    assert_eq!(rs.parity_mismatches, 0, "every RS reconstruction must byte-verify");
    assert!(rs.guarantees_held, "RS(k, 2) must keep the §5 guarantee");
    assert!(rs.recovery_reads > 0, "masking requires recovery reads");
}

#[test]
fn rs2_double_failure_rebuild_completes_and_is_thread_invariant() {
    // Both failed disks rebuild to completion given enough rounds (the
    // 120-round sweep cuts the second rebuild short), and the whole
    // degraded + rebuild pipeline is bit-identical at 1, 2 and 8 disk
    // worker threads.
    let rs2 = SCENARIOS
        .iter()
        .find(|sc| sc.name == "double_disk_failure_rs2")
        .expect("rs2 scenario exists");
    let run = |threads: usize| {
        let cfg = campaign_config(rs2, Scheme::PrefetchParityDisks, 400, 7, threads);
        Simulator::new(cfg).expect("constructs").run()
    };
    let base = run(1);
    assert_eq!(base.lost_streams, 0, "RS(k, 2) must mask the double failure");
    assert_eq!(base.unrecoverable_blocks, 0, "no holes with two redundancy shards");
    assert!(base.rebuild_completed_round.is_some(), "both rebuilds must finish");
    assert_eq!(base.parity_mismatches, 0, "every RS reconstruction must byte-verify");
    for threads in [2usize, 8] {
        assert_eq!(base, run(threads), "rs2 run diverged at {threads} threads");
    }
}

#[test]
fn slow_disk_degrades_without_losing_streams() {
    // A slow disk is degraded-but-alive: service stretches (hiccups) but
    // nothing is down, so no recovery path and no losses.
    for scheme in CAMPAIGN_SCHEMES {
        let r = row("slow_disk", scheme);
        assert!(r.hiccups > 0, "{scheme}: a 4x slowdown must be visible");
        assert_eq!(r.lost_streams, 0, "{scheme}: slow disks never lose streams");
        assert_eq!(r.degraded_refusals, 0, "{scheme}: slow disks are not outages");
    }
}

#[test]
fn rebuild_reads_spread_declustered_but_concentrate_clustered() {
    // §4.1 vs §6.1: rebuilding a declustered disk reads from every disk
    // that shares a parity group with it (6 of the 7 survivors in the
    // seed-7 (8, 4) design), while rebuilding a clustered disk reads
    // only from the failed disk's own cluster (3 disks at p = 4).
    let run = |scheme| {
        let mut cfg = campaign_config(&SCENARIOS[0], scheme, 300, 7, 1);
        cfg.faults = Some(FaultSchedule::parse("@30 fail 1\n").expect("parses"));
        cfg.arrival_rate = 1.0;
        cfg.auto_rebuild = true;
        cfg.degraded_admission = false;
        Simulator::new(cfg).expect("constructs").run()
    };

    let decl = run(Scheme::DeclusteredParity);
    assert!(decl.rebuild_completed_round.is_some(), "declustered rebuild finishes");
    assert_eq!(decl.disk_rebuild_reads[1], 0, "the failed disk is never a source");
    let decl_sources: Vec<usize> =
        (0..8).filter(|&d| decl.disk_rebuild_reads[d] > 0).collect();
    assert!(
        decl_sources.len() >= 5,
        "declustered rebuild must spread across survivors, got {decl_sources:?}"
    );
    // Balance bound: a source disk shares at most 2 of disk 1's three
    // parity-group sets in the seed-7 design, so the busiest source
    // carries at most ~2x the lightest (3x allows for row rounding).
    let loads: Vec<u64> = decl_sources.iter().map(|&d| decl.disk_rebuild_reads[d]).collect();
    let (max, min) = (loads.iter().max().unwrap(), loads.iter().min().unwrap());
    assert!(
        *max <= 3 * *min,
        "declustered rebuild sources must be balanced, got {loads:?}"
    );

    let clus = run(Scheme::PrefetchParityDisks);
    assert!(clus.rebuild_completed_round.is_some(), "clustered rebuild finishes");
    let clus_sources: Vec<usize> =
        (0..8).filter(|&d| clus.disk_rebuild_reads[d] > 0).collect();
    assert!(
        clus_sources.iter().all(|&d| d < 4 && d != 1),
        "clustered rebuild of disk 1 must read only from its own cluster \
         (disks 0, 2, 3), got {clus_sources:?}"
    );
    assert!(
        decl_sources.len() > clus_sources.len(),
        "declustered must involve more sources ({decl_sources:?}) than \
         clustered ({clus_sources:?})"
    );
}

/// Small-array config for the invariant proptests: the campaign geometry
/// with a custom schedule and no degraded cap (so streams keep flowing
/// and a buggy engine would have every chance to touch the down disk).
fn invariant_cfg(scheme: Scheme, spec: &str, rounds: u64, seed: u64) -> SimConfig {
    let mut cfg = campaign_config(&SCENARIOS[0], scheme, rounds, seed, 1);
    cfg.faults = Some(FaultSchedule::parse(spec).expect("spec parses"));
    cfg.arrival_rate = 3.0;
    cfg.degraded_admission = false;
    cfg
}

const INVARIANT_SCHEMES: [Scheme; 3] =
    [Scheme::DeclusteredParity, Scheme::PrefetchParityDisks, Scheme::NonClustered];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// A hard-failed disk serves nothing — no data blocks, no recovery
    /// reads, no rebuild reads — from its failure round until a spare
    /// rebuild returns it to service (or the run ends), whatever the
    /// scheme, victim, timing or workload seed.
    #[test]
    fn failed_disk_never_serves(
        scheme_ix in 0usize..3,
        disk in 0u32..8,
        fail_round in 10u64..60,
        auto_rebuild in any::<bool>(),
        seed in 0u64..1000,
    ) {
        let mut cfg = invariant_cfg(
            INVARIANT_SCHEMES[scheme_ix],
            &format!("@{fail_round} fail {disk}\n"),
            80,
            seed,
        );
        cfg.auto_rebuild = auto_rebuild;
        let mut sim = Simulator::new(cfg).expect("constructs");
        let d = disk as usize;
        let mut frozen = None;
        for round in 0..80u64 {
            sim.step_report();
            let m = sim.metrics();
            let now = (m.disk_blocks[d], m.disk_recovery_reads[d], m.disk_rebuild_reads[d]);
            // Faults apply at the start of their round, so the counters
            // must freeze at the end of the round before — and stay
            // frozen until a completed rebuild puts the disk back.
            if round + 1 >= fail_round && m.rebuild_completed_round.is_none() {
                match frozen {
                    None => frozen = Some(now),
                    Some(at) => prop_assert_eq!(
                        now, at,
                        "round {}: failed disk {} served after its failure", round, disk
                    ),
                }
            }
        }
        prop_assert!(frozen.is_some(), "run must cover the failure round");
    }

    /// A disk in a transient outage window serves nothing while the
    /// window is open, and the declared losses stay at zero (transient
    /// windows mask; they never declare streams lost by themselves).
    #[test]
    fn transient_disk_serves_nothing_during_its_window(
        scheme_ix in 0usize..3,
        disk in 0u32..8,
        start in 10u64..50,
        width in 3u64..12,
        seed in 0u64..1000,
    ) {
        let cfg = invariant_cfg(
            INVARIANT_SCHEMES[scheme_ix],
            &format!("@{start} transient {disk} rounds={width}\n"),
            80,
            seed,
        );
        let mut sim = Simulator::new(cfg).expect("constructs");
        let d = disk as usize;
        let mut at_open = None;
        for round in 0..80u64 {
            sim.step_report();
            let m = sim.metrics();
            let now = (m.disk_blocks[d], m.disk_recovery_reads[d], m.disk_rebuild_reads[d]);
            // Baseline at the end of the round before the window opens
            // (the outage applies at the start of round `start`).
            if round + 1 >= start && round < start + width {
                match at_open {
                    None => at_open = Some(now),
                    Some(at) => prop_assert_eq!(
                        now, at,
                        "round {}: disk {} served inside its outage window", round, disk
                    ),
                }
            }
        }
        prop_assert!(at_open.is_some(), "run must cover the outage window");
        prop_assert_eq!(sim.metrics().lost_streams, 0, "transients never declare loss");
    }
}
