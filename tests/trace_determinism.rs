//! Cross-thread trace determinism: the exported event stream — not just
//! the metrics — must be byte-identical at every disk-service thread
//! count.
//!
//! The engine buffers per-disk service events in each worker and merges
//! them in disk-ID order on the coordinating thread (DESIGN.md §6), so a
//! JSONL export is a deterministic function of the configuration alone.
//! These tests replay identical runs at 1, 2 and 8 threads — fault-free,
//! through a mid-run failure, and with background rebuild — and compare
//! the raw bytes of the export. A conservation test additionally checks
//! that per-round reports sum to the final metrics, so the per-round and
//! end-of-run views of a run can never drift apart.

use cms_core::{DiskId, Scheme};
use cms_model::{tuned_point, ModelInput};
use cms_sim::{Metrics, SimConfig, Simulator};
use cms_trace::{JsonlSink, SharedBuffer, TraceSummary};

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn paper_cfg(scheme: Scheme, seed: u64) -> SimConfig {
    let input = ModelInput::sigmod96(256 << 20).with_storage_blocks(75_000);
    let point = tuned_point(scheme, &input, 4, seed).expect("feasible");
    let mut cfg = SimConfig::sigmod96(scheme, &point, 32);
    cfg.rounds = 120;
    cfg.seed = seed;
    cfg
}

/// Runs `cfg` with a JSONL sink writing into memory and returns the
/// metrics, the trace summary, and the exported bytes.
fn traced_run(cfg: SimConfig) -> (Metrics, TraceSummary, Vec<u8>) {
    let buf = SharedBuffer::default();
    let mut sim = Simulator::new(cfg).expect("constructs");
    sim.set_trace_sink(Box::new(JsonlSink::new(buf.clone())));
    let (metrics, summary) = sim.run_summary();
    (metrics, summary.expect("tracing was enabled"), buf.contents())
}

fn assert_byte_identical(base: &[u8], other: &[u8], label: &str) {
    if base == other {
        return;
    }
    // Locate the first diverging line for a debuggable failure message.
    let a = String::from_utf8_lossy(base);
    let b = String::from_utf8_lossy(other);
    for (i, (la, lb)) in a.lines().zip(b.lines()).enumerate() {
        assert_eq!(la, lb, "{label}: traces diverge at line {i}");
    }
    panic!(
        "{label}: traces are a prefix of each other ({} vs {} bytes)",
        base.len(),
        other.len()
    );
}

#[test]
fn fault_free_trace_is_byte_identical_at_any_thread_count() {
    let (base_m, base_s, base) =
        traced_run(paper_cfg(Scheme::DeclusteredParity, 0x7ACE).with_threads(1));
    assert!(base_m.admitted > 0, "run must do real work");
    assert!(base_s.events > 0 && !base.is_empty());
    for threads in THREAD_COUNTS {
        let (m, s, bytes) =
            traced_run(paper_cfg(Scheme::DeclusteredParity, 0x7ACE).with_threads(threads));
        assert_eq!(base_m, m, "fault-free metrics, {threads} threads");
        assert_eq!(base_s, s, "fault-free summary, {threads} threads");
        assert_byte_identical(&base, &bytes, &format!("fault-free, {threads} threads"));
    }
}

#[test]
fn failure_trace_is_byte_identical_at_any_thread_count() {
    let cfg = |threads| {
        paper_cfg(Scheme::DeclusteredParity, 0xFA_17)
            .with_failure(40, DiskId(5))
            .with_verification()
            .with_threads(threads)
    };
    let (base_m, base_s, base) = traced_run(cfg(1));
    assert!(base_m.reconstructions > 0, "failure must force reconstructions");
    assert_eq!(base_s.failure_round, Some(40));
    assert!(base_s.failure_to_first_recovery().is_some());
    for threads in THREAD_COUNTS {
        let (m, s, bytes) = traced_run(cfg(threads));
        assert_eq!(base_m, m, "failure metrics, {threads} threads");
        assert_eq!(base_s, s, "failure summary, {threads} threads");
        assert_byte_identical(&base, &bytes, &format!("mid-run failure, {threads} threads"));
    }
}

#[test]
fn rebuild_trace_is_byte_identical_and_reports_a_finite_gap() {
    let cfg = |threads| {
        let mut c = paper_cfg(Scheme::DeclusteredParity, 0x2EB_17D)
            .with_failure(30, DiskId(2))
            .with_rebuild()
            .with_threads(threads);
        c.catalog_clips = 200; // small library so the rebuild finishes in-run
        c.rounds = 400;
        c.arrival_rate = 1.0;
        c
    };
    let (base_m, base_s, base) = traced_run(cfg(1));
    assert!(base_m.rebuild_reads > 0, "rebuild must issue reads");
    let gap = base_s
        .failure_to_rebuild_complete()
        .expect("rebuild must complete within the run");
    assert!(gap > 0, "rebuild cannot finish in the failure round");
    assert_eq!(base_s.rebuild_completed_round, base_m.rebuild_completed_round);
    for threads in THREAD_COUNTS {
        let (m, s, bytes) = traced_run(cfg(threads));
        assert_eq!(base_m, m, "rebuild metrics, {threads} threads");
        assert_eq!(base_s, s, "rebuild summary, {threads} threads");
        assert_byte_identical(&base, &bytes, &format!("background rebuild, {threads} threads"));
    }
}

#[test]
fn fault_schedule_trace_is_byte_identical_at_any_thread_count() {
    // The multi-event campaign schedule: transient outage, hard failure
    // with rebuild, slow-disk window, repair — all under degraded-mode
    // admission. The fault events themselves (DiskTransient/DiskSlow/
    // StreamLost/DegradedRefusal) ride the same ordered stream as the
    // service events, so the export must stay byte-identical.
    let cfg = |threads| {
        let faults = cms_sim::FaultSchedule::parse(
            "@20 transient 3 rounds=8\n@40 fail 5\n@60 slow 7 factor=3 rounds=12\n@90 repair 5\n",
        )
        .expect("schedule parses");
        let mut c = paper_cfg(Scheme::DeclusteredParity, 0x005C_4D17)
            .with_faults(faults)
            .with_degraded_admission()
            .with_rebuild()
            .with_verification()
            .with_threads(threads);
        c.catalog_clips = 200;
        c
    };
    let (base_m, base_s, base) = traced_run(cfg(1));
    assert!(base_m.recovery_reads > 0, "the schedule must force recovery");
    assert!(base_s.transient_outages > 0, "summary must count the transient window");
    assert!(base_s.slow_windows > 0, "summary must count the slow window");
    for threads in THREAD_COUNTS {
        let (m, s, bytes) = traced_run(cfg(threads));
        assert_eq!(base_m, m, "fault schedule metrics, {threads} threads");
        assert_eq!(base_s, s, "fault schedule summary, {threads} threads");
        assert_byte_identical(&base, &bytes, &format!("fault schedule, {threads} threads"));
    }
}

#[test]
fn round_reports_conserve_into_final_metrics() {
    // Summing what every round claims happened must reproduce the final
    // metrics — through failure, recovery and rebuild — so dashboards fed
    // per-round and post-mortems fed end-of-run state can never disagree.
    let mut cfg = paper_cfg(Scheme::DeclusteredParity, 0xC0_13)
        .with_failure(40, DiskId(3))
        .with_rebuild()
        .with_degraded_admission();
    cfg.catalog_clips = 200;
    cfg.rounds = 300;
    let rounds = cfg.rounds;
    let mut sim = Simulator::new(cfg).expect("constructs");
    let mut sums = [0u64; 11];
    for _ in 0..rounds {
        let r = sim.step_report();
        sums[0] += r.arrivals;
        sums[1] += r.admissions;
        sums[2] += r.completions;
        sums[3] += r.blocks_served;
        sums[4] += r.recovery_reads;
        sums[5] += r.hiccups;
        sums[6] += r.service_errors;
        sums[7] += r.rebuild_reads;
        sums[8] += r.late_serves;
        sums[9] += r.lost_streams;
        sums[10] += r.degraded_refusals;
    }
    let m = sim.metrics().clone();
    assert_eq!(sums[0], m.arrivals, "arrivals conserve");
    assert_eq!(sums[1], m.admitted, "admissions conserve");
    assert_eq!(sums[2], m.completed, "completions conserve");
    assert_eq!(sums[3], m.blocks_fetched, "blocks served conserve");
    assert_eq!(sums[4], m.recovery_reads, "recovery reads conserve");
    assert_eq!(sums[5], m.hiccups, "hiccups conserve");
    assert_eq!(sums[6], m.service_errors, "service errors conserve");
    assert_eq!(sums[7], m.rebuild_reads, "rebuild reads conserve");
    assert_eq!(sums[8], m.late_serves, "late serves conserve");
    assert_eq!(sums[9], m.lost_streams, "lost streams conserve");
    assert_eq!(sums[10], m.degraded_refusals, "degraded refusals conserve");
    assert!(sums[4] > 0, "the drill must exercise recovery");
    assert!(sums[7] > 0, "the drill must exercise rebuild");
}
