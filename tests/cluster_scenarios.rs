//! Cluster campaign scenarios: golden sweep, failure-mode differentials,
//! and the timeline's node-lane rendering pinned as an ASCII snapshot.
//!
//! The cluster-tier mirror of `tests/fault_scenarios.rs`:
//!
//! 1. **Golden**: the cluster campaign sweep regenerated here must match
//!    the committed JSONL byte-for-byte, so behavioural drift in the
//!    gateway, migration or cross-node rebuild paths shows up as a
//!    reviewable golden diff.
//! 2. **Differential**: replicated vs unreplicated node failure — with
//!    r = 2 every stream migrates to a surviving replica; with r = 1 the
//!    failed node's catalog is stranded and its streams are lost.
//! 3. **Snapshot**: the `timeline` renderer's node lanes (`NFAIL`,
//!    `NREPAIR`, `NREBUILT`, migrations, cross-node rebuild traffic)
//!    over a fail→migrate→rebuild campaign, pinned as committed ASCII.
//!
//! Regenerate both goldens after an intentional behaviour change:
//!
//! ```text
//! cargo run --release -p cms-bench --bin cluster -- --out crates/bench/goldens/cluster_campaign.jsonl
//! UPDATE_GOLDENS=1 cargo test --test cluster_scenarios
//! ```

use std::sync::OnceLock;

use cms_bench::{
    cluster_campaign_config, cluster_campaign_rows, cluster_to_jsonl, render_timeline,
    ClusterCampaignRow, CLUSTER_SCENARIOS,
};
use cms_cluster::ClusterSim;
use cms_trace::{JsonlSink, SharedBuffer};

/// The sweep the golden was generated from: default rounds and seed, one
/// run per scenario. Shared across tests via `OnceLock`.
fn sweep() -> &'static [ClusterCampaignRow] {
    static ROWS: OnceLock<Vec<ClusterCampaignRow>> = OnceLock::new();
    ROWS.get_or_init(|| cluster_campaign_rows(120, 7, 0, 1, None))
}

fn row(scenario: &str) -> &'static ClusterCampaignRow {
    sweep()
        .iter()
        .find(|r| r.scenario == scenario)
        .unwrap_or_else(|| panic!("no cluster campaign row for {scenario}"))
}

#[test]
fn cluster_sweep_matches_committed_golden() {
    let golden = include_str!("../crates/bench/goldens/cluster_campaign.jsonl");
    let regenerated = cluster_to_jsonl(sweep());
    for (i, (want, got)) in golden.lines().zip(regenerated.lines()).enumerate() {
        assert_eq!(
            want, got,
            "cluster row {i} drifted from the golden; if intentional, regenerate with \
             `cargo run --release -p cms-bench --bin cluster -- --out crates/bench/goldens/cluster_campaign.jsonl`"
        );
    }
    assert_eq!(golden, regenerated, "golden and regenerated sweeps differ in length");
}

#[test]
fn replication_differential_on_node_failure() {
    // r = 2: the surviving replica absorbs every stream — migrations,
    // no losses, and the catalog stays fully routable.
    let replicated = row("node_failure");
    assert!(replicated.migrations > 0, "replicas must absorb the failed node's streams");
    assert_eq!(replicated.lost_streams, 0, "r = 2 masks a single node failure");
    assert_eq!(replicated.unroutable, 0, "every clip keeps a routable replica");
    // r = 1: the failed node's whole catalog is stranded.
    let bare = row("unreplicated_failure");
    assert!(bare.lost_streams > 0, "r = 1 has no surviving replica to migrate to");
    assert!(bare.unroutable > 0, "stranded clips must refuse new arrivals");
    assert_eq!(bare.migrations, 0, "nowhere to migrate without a replica");
}

#[test]
fn repair_completes_a_cross_node_rebuild() {
    let r = row("fail_migrate_rebuild");
    assert_eq!(r.node_failures, 1);
    assert_eq!(r.node_rebuilds_completed, 1, "the repaired node must finish rebuilding");
    assert!(r.cross_node_rebuild_blocks > 0, "rebuild ships blocks from surviving replicas");
    // The whole sweep upholds the surviving-stream guarantee.
    for r in sweep() {
        assert!(r.guarantees_held, "{}: a surviving stream glitched", r.scenario);
    }
}

/// Renders the fail→migrate→rebuild campaign's trace through the
/// timeline renderer — node lanes above disk lanes — and pins the exact
/// ASCII against the committed snapshot.
#[test]
fn timeline_node_lanes_match_committed_snapshot() {
    let scenario = CLUSTER_SCENARIOS
        .iter()
        .find(|s| s.name == "fail_migrate_rebuild")
        .expect("canned scenario exists");
    let cfg = cluster_campaign_config(scenario, 120, 7, 1);
    let mut sim = ClusterSim::new(cfg).expect("campaign cluster constructs");
    let buf = SharedBuffer::new();
    sim.set_trace_sink(Box::new(JsonlSink::new(buf.clone())));
    let _run = sim.run();
    let text = String::from_utf8(buf.contents()).expect("trace is utf8");

    let (rendered, skipped) =
        render_timeline(&text, 40, 60).expect("campaign trace renders");
    assert_eq!(skipped, 0, "every trace line must parse");
    // The node lane milestones must all be present before pinning bytes.
    for marker in ["NFAIL(n3)", "NREPAIR(n3)", "NREBUILT(n3)", "migrate=", "xrebuild="] {
        assert!(rendered.contains(marker), "timeline missing node-lane marker {marker}");
    }

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/crates/bench/goldens/timeline_cluster.txt");
    if std::env::var_os("UPDATE_GOLDENS").is_some() {
        std::fs::write(path, &rendered).expect("write timeline golden");
        return;
    }
    let golden = std::fs::read_to_string(path).unwrap_or_else(|e| {
        panic!(
            "cannot read {path}: {e}; regenerate with \
             `UPDATE_GOLDENS=1 cargo test --test cluster_scenarios`"
        )
    });
    assert_eq!(
        golden, rendered,
        "timeline snapshot drifted; if intentional, regenerate with \
         `UPDATE_GOLDENS=1 cargo test --test cluster_scenarios`"
    );
}
