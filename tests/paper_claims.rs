//! The paper's evaluation claims, asserted against this reproduction.
//!
//! Each test names the claim (Section 8 / 9 prose) and checks the *shape*
//! of our analytical and simulated results — who wins, where curves rise
//! and fall, where crossovers land. Absolute clip counts are not asserted
//! (our substrate is a simulator, not the authors' testbed).

use cms_bench::{failure_drill, fig5_rows, fig6_rows, Fig6Row};
use cms_core::Scheme;

fn fig5_clips(buffer: &str, scheme: Scheme) -> Vec<(u32, u32)> {
    fig5_rows()
        .into_iter()
        .filter(|r| r.buffer == buffer && r.scheme == scheme)
        .map(|r| (r.p, r.point.total_clips))
        .collect()
}

#[test]
fn claim_declustered_and_flat_decline_with_p() {
    // §8.1: "Both the declustered parity and the pre-fetching without
    // parity disk schemes support fewer clips as the parity group sizes
    // increase."
    for buffer in ["256MB", "2GB"] {
        for scheme in [Scheme::DeclusteredParity, Scheme::PrefetchFlat] {
            let pts = fig5_clips(buffer, scheme);
            for w in pts.windows(2) {
                assert!(
                    w[1].1 <= w[0].1,
                    "{scheme} at {buffer} must decline: {pts:?}"
                );
            }
        }
    }
}

#[test]
fn claim_clustered_schemes_rise_then_fall() {
    // §8.1: "for the three schemes, we initially observe an increase in
    // the number of clips serviced as the parity group size increases
    // ... beyond a parity group size of 8 [it] decreases."
    for buffer in ["256MB", "2GB"] {
        for scheme in [
            Scheme::StreamingRaid,
            Scheme::PrefetchParityDisks,
            Scheme::NonClustered,
        ] {
            let pts = fig5_clips(buffer, scheme);
            assert!(pts[1].1 > pts[0].1, "{scheme} {buffer}: p=4 must beat p=2");
            let peak = pts.iter().map(|&(_, c)| c).max().unwrap();
            let last = pts.last().unwrap().1;
            assert!(last < peak, "{scheme} {buffer}: p=32 must be below the peak");
        }
    }
}

#[test]
fn claim_small_buffer_favors_declustered() {
    // §8.1 / §9: "for low and medium buffer sizes, the declustered parity
    // scheme outperforms the remaining schemes". Checked at the small and
    // medium parity group sizes the claim concerns (at large p the
    // clustered schemes overtake it — also per the paper).
    for p in [2u32, 4] {
        let declustered = fig5_clips("256MB", Scheme::DeclusteredParity)
            .iter()
            .find(|&&(pp, _)| pp == p)
            .unwrap()
            .1;
        for other in [
            Scheme::StreamingRaid,
            Scheme::PrefetchParityDisks,
            Scheme::NonClustered,
        ] {
            let c = fig5_clips("256MB", other).iter().find(|&&(pp, _)| pp == p).unwrap().1;
            assert!(
                declustered > c,
                "p={p}: declustered ({declustered}) must beat {other} ({c}) at 256MB"
            );
        }
    }
}

#[test]
fn claim_large_buffer_favors_prefetch_flat_over_declustered() {
    // §8.1: "it services fewer clips than the pre-fetching without parity
    // disk scheme" (declustered, at 2 GB).
    for p in [2u32, 4, 8, 16] {
        let declustered = fig5_clips("2GB", Scheme::DeclusteredParity)
            .iter()
            .find(|&&(pp, _)| pp == p)
            .unwrap()
            .1;
        let flat = fig5_clips("2GB", Scheme::PrefetchFlat)
            .iter()
            .find(|&&(pp, _)| pp == p)
            .unwrap()
            .1;
        assert!(
            flat >= declustered,
            "p={p}: flat ({flat}) must match/beat declustered ({declustered}) at 2GB"
        );
    }
}

#[test]
fn claim_prefetch_beats_streaming_raid_everywhere() {
    // §9: "Both the pre-fetching schemes and the non-clustered scheme
    // perform better than streaming RAID for all parity group sizes."
    for buffer in ["256MB", "2GB"] {
        let raid = fig5_clips(buffer, Scheme::StreamingRaid);
        for scheme in [Scheme::PrefetchParityDisks, Scheme::NonClustered] {
            let other = fig5_clips(buffer, scheme);
            for (&(p, r), &(_, o)) in raid.iter().zip(other.iter()) {
                assert!(
                    o >= r,
                    "{scheme} ({o}) must match/beat streaming RAID ({r}) at {buffer}, p={p}"
                );
            }
        }
    }
}

#[test]
fn claim_non_clustered_peaks_at_large_p() {
    // §8.1: "the non-clustered ... scheme[s] perform the best for a
    // parity group size of 16 since they utilize disk bandwidth
    // effectively" — we accept a peak at 8 or 16.
    for buffer in ["256MB", "2GB"] {
        let pts = fig5_clips(buffer, Scheme::NonClustered);
        let (peak_p, _) = pts.iter().copied().max_by_key(|&(_, c)| c).unwrap();
        assert!(
            peak_p == 8 || peak_p == 16,
            "{buffer}: non-clustered peak at p={peak_p}, expected 8 or 16"
        );
    }
}

/// Short simulated Figure 6 (120 rounds keeps CI fast; shapes stabilize
/// well before 600).
fn fig6_short() -> Vec<Fig6Row> {
    fig6_rows(120, 0xF166)
}

#[test]
fn claim_simulation_matches_analytical_ordering_roughly() {
    // §8.2: "for a buffer size of 256 MB, the relative performance of the
    // various schemes is almost the same as [the analytical results]".
    // We check the coarse version: at p = 4 and 256 MB, declustered and
    // the parity-disk schemes all beat streaming RAID in simulation too.
    let rows = fig6_short();
    let admitted = |scheme: Scheme, p: u32| {
        rows.iter()
            .find(|r| r.buffer == "256MB" && r.scheme == scheme && r.p == p)
            .map(|r| r.metrics.admitted)
            .unwrap()
    };
    let raid = admitted(Scheme::StreamingRaid, 4);
    for scheme in [
        Scheme::DeclusteredParity,
        Scheme::PrefetchParityDisks,
        Scheme::NonClustered,
    ] {
        assert!(
            admitted(scheme, 4) > raid,
            "{scheme} must beat streaming RAID in simulation at p=4/256MB"
        );
    }
}

#[test]
fn claim_simulated_runs_never_violate_guarantees() {
    // The premise of every number in Figure 6: admission control keeps
    // all rate guarantees, so fault-free runs never hiccup and per-disk
    // rounds never exceed their deadline.
    for r in fig6_short() {
        assert_eq!(r.metrics.hiccups, 0, "{} p={}", r.scheme, r.p);
        assert!(
            r.metrics.peak_utilization <= 1.0 + 1e-9,
            "{} p={}: utilization {}",
            r.scheme,
            r.p,
            r.metrics.peak_utilization
        );
    }
}

#[test]
fn claim_buffer_constraint_holds_in_simulation() {
    // The §7 buffer math is a real bound: in every simulated cell, peak
    // buffered bytes stay within the configured buffer B (the prefetch
    // schemes saturate it exactly — their capacity is buffer-limited).
    for r in fig6_short() {
        let buffer_bytes: u64 = if r.buffer == "256MB" { 256 << 20 } else { 2 << 30 };
        let peak = r.metrics.peak_buffered_blocks * r.point.block_bytes;
        assert!(
            peak <= buffer_bytes,
            "{} p={} {}: peak buffer {} exceeds B {}",
            r.scheme,
            r.p,
            r.buffer,
            peak,
            buffer_bytes
        );
    }
}

#[test]
fn claim_fig6_golden_shapes() {
    // The simulated Figure 6 reproduces the paper's qualitative curve
    // shapes (E3), checked per buffer size on one grid run:
    //  1. the clustered family (streaming RAID, pre-fetching with parity
    //     disks, non-clustered) rises from p = 2 and falls by p = 32 —
    //     the peak is interior;
    //  2. declustered parity and pre-fetching without parity disks peak
    //     at p = 2 and decline across the sweep;
    //  3. the non-clustered curve crosses above declustered parity in the
    //     p = 8..16 region (small p favors declustering, large p favors
    //     effective-bandwidth clustering).
    let rows = fig6_short();
    let curve = |buffer: &str, scheme: Scheme| -> Vec<(u32, u64)> {
        rows.iter()
            .filter(|r| r.buffer == buffer && r.scheme == scheme)
            .map(|r| (r.p, r.metrics.admitted))
            .collect()
    };
    for buffer in ["256MB", "2GB"] {
        // 1. Clustered family: rise then fall.
        for scheme in [
            Scheme::StreamingRaid,
            Scheme::PrefetchParityDisks,
            Scheme::NonClustered,
        ] {
            let pts = curve(buffer, scheme);
            assert!(pts[1].1 > pts[0].1, "{scheme} {buffer}: p=4 must beat p=2: {pts:?}");
            let (peak_p, peak) = pts.iter().copied().max_by_key(|&(_, c)| c).unwrap();
            assert!(
                peak_p > 2 && peak_p < 32,
                "{scheme} {buffer}: peak must be interior, got p={peak_p}: {pts:?}"
            );
            assert!(
                pts.last().unwrap().1 < peak,
                "{scheme} {buffer}: p=32 must be below the peak: {pts:?}"
            );
        }
        // 2. Declustered/flat: best at p = 2, declining across the sweep.
        for scheme in [Scheme::DeclusteredParity, Scheme::PrefetchFlat] {
            let pts = curve(buffer, scheme);
            let first = pts[0].1;
            assert!(
                pts.iter().all(|&(_, c)| c <= first),
                "{scheme} {buffer}: p=2 must be the maximum: {pts:?}"
            );
            assert!(
                pts.last().unwrap().1 < first,
                "{scheme} {buffer}: p=32 must fall below p=2: {pts:?}"
            );
            let at = |p| pts.iter().find(|&&(pp, _)| pp == p).unwrap().1;
            assert!(at(16) < at(4), "{scheme} {buffer}: p=16 must fall below p=4: {pts:?}");
        }
        // 3. Crossover: declustered leads non-clustered at p = 2; the
        // first p where non-clustered matches or beats it lies in 8..=16.
        let declustered = curve(buffer, Scheme::DeclusteredParity);
        let non_clustered = curve(buffer, Scheme::NonClustered);
        assert!(
            declustered[0].1 > non_clustered[0].1,
            "{buffer}: declustered must lead at p=2"
        );
        let crossover = declustered
            .iter()
            .zip(&non_clustered)
            .find(|((_, d), (_, n))| n >= d)
            .map(|((p, _), _)| *p)
            .expect("non-clustered must overtake declustered somewhere");
        assert!(
            (8..=16).contains(&crossover),
            "{buffer}: crossover at p={crossover}, expected in 8..=16"
        );
    }
}

#[test]
fn claim_failure_drill_upholds_section9() {
    // §9: both approaches provide "rate guarantees for CM clips without
    // any interruption of service in the event of a single disk failure";
    // §7.4: non-clustered "may cause blocks belonging to clips to be
    // lost".
    let rows = failure_drill(150, 0xD121);
    assert!(rows.len() >= 6, "all six schemes must run the drill");
    for r in &rows {
        assert_eq!(r.metrics.parity_mismatches, 0, "{}", r.scheme);
        if r.scheme == Scheme::NonClustered {
            assert!(
                r.metrics.hiccups > 0,
                "saturated non-clustered should expose the §7.4 caveat"
            );
        } else {
            assert_eq!(r.metrics.hiccups, 0, "{} must hold its guarantee", r.scheme);
            assert!(r.metrics.reconstructions > 0, "{} must have reconstructed", r.scheme);
        }
    }
}

#[test]
fn claim_cluster_capacity_respects_vod_bounds() {
    // Cluster tier vs the Scalable Distributed VoD bounds (Viennot et
    // al., RR-6496): a saturated multi-node campaign with a node
    // failure, stream migration and cross-node rebuild must stay inside
    // the bandwidth bound (total streams ≤ N × per-node capacity), track
    // the degraded bound while nodes are dark, and finish its rebuild in
    // exactly the rate-limited round count.
    use cms_cluster::{ClusterConfig, ClusterSim};
    use cms_model::{
        capacity, capacity_bound, clip_concurrency_bound, cluster_capacity_bound,
        cluster_rebuild_rounds, degraded_cluster_capacity_bound, ModelInput,
    };
    use cms_sim::{SimConfig, Simulator};

    let mut input = ModelInput::sigmod96(256 << 20);
    input.d = 8;
    let point = capacity(Scheme::DeclusteredParity, &input, 4).expect("feasible point");
    let mut node = SimConfig::sigmod96(Scheme::DeclusteredParity, &point, 8);
    node.arrival_rate = 0.0; // the gateway generates all arrivals
    node.clip_len = 12;

    // The per-node stream capacity is the single-server §7 number; it
    // must itself respect the single-server analytical ceiling.
    let mut probe = node.clone();
    probe.catalog_clips = 4;
    let node_cap = Simulator::new(probe).expect("probe").nominal_capacity();
    assert!(node_cap > 0);
    assert!(
        node_cap <= capacity_bound(&point, 8),
        "engine capacity {node_cap} exceeds the §7 bound {}",
        capacity_bound(&point, 8)
    );

    const NODES: u32 = 8;
    const REPLICATION: u32 = 2;
    const REBUILD_RATE: u32 = 64;
    let faults = cms_fault::FaultSchedule::parse("@40 fail-node 3\n@60 repair-node 3\n")
        .expect("schedule parses");
    let cfg = ClusterConfig {
        nodes: NODES,
        replication: REPLICATION,
        catalog_clips: 64,
        node,
        arrival_rate: 400.0, // far beyond the cluster: saturate admission
        zipf_theta: 0.0,
        rounds: 120,
        rebuild_rate: REBUILD_RATE,
        rebuild_fanout: 2,
        faults: Some(faults),
        seed: 0x0DB0_09D5,
        threads: 1,
        trace: cms_trace::TraceSpec::off(),
    };
    let run = ClusterSim::new(cfg).expect("constructs").run();
    let m = &run.metrics;

    // Bandwidth bound: the gateway cap and everything it admitted stay
    // under N × node capacity, degrading linearly with dark nodes.
    let healthy_bound = cluster_capacity_bound(node_cap, NODES);
    assert!(m.peak_active <= healthy_bound, "{} > {healthy_bound}", m.peak_active);
    for r in &run.reports {
        let dark = u32::try_from(r.down_nodes + r.rebuilding_nodes).unwrap();
        assert!(
            r.cluster_cap <= degraded_cluster_capacity_bound(node_cap, NODES, dark),
            "round {}: cap {} exceeds degraded bound with {dark} dark nodes",
            r.round,
            r.cluster_cap
        );
        assert!(r.active + r.pending <= healthy_bound, "round {}: overcommitted", r.round);
    }
    // Saturation actually exercised the cap (the bound is not vacuous),
    // and the failure triggered migration with no stream loss at r=2.
    assert!(m.cluster_refusals > 0, "saturated gateway must shed");
    assert!(m.migrations > 0);
    assert_eq!(m.lost_streams, 0);
    assert_eq!(m.hiccups, 0, "rate guarantees hold through the node failure");
    // After the post-failure transient drains, commitments sit back
    // under the live cap.
    let last = run.reports.last().unwrap();
    assert!(last.active + last.pending <= last.cluster_cap);

    // Placement bound: one title can never out-stream its replica set.
    assert!(clip_concurrency_bound(node_cap, REPLICATION) <= healthy_bound);
    assert_eq!(
        clip_concurrency_bound(node_cap, NODES),
        healthy_bound,
        "full replication is the only way one title spans the cluster"
    );

    // Rebuild bound: the cross-node rebuild is rate-limited by
    // construction, so it ships blocks for exactly ceil(debt / rate)
    // rounds (at least one source node was up throughout).
    let debt = m.cross_node_rebuild_blocks;
    assert!(debt > 0);
    assert_eq!(m.node_rebuilds_completed, 1);
    let shipping_rounds =
        run.reports.iter().filter(|r| r.rebuild_blocks > 0).count() as u64;
    assert_eq!(shipping_rounds, cluster_rebuild_rounds(debt, REBUILD_RATE));
}
